//! The stage-checkpoint journal behind [`Pipeline::run_resumable`].
//!
//! After each stage completes, its typed artifacts (already `serde`)
//! are serialized into one file per stage under a run directory keyed
//! by a hash of the world config plus [`PipelineOptions`] — so journals
//! from a different seed, scale, or severity can never be resumed by
//! accident. Each record carries a checksum over its exact payload
//! bytes and is verified on load: a stale, truncated, or tampered
//! record is *rejected* (and the stage recomputed), never silently
//! reused.
//!
//! Two deliberate non-goals keep the format small:
//!
//! * `workers` is excluded from the run key — the determinism contract
//!   (see `tests/determinism.rs`) makes every artifact byte-identical
//!   across worker counts, so a journal written at `workers = 1` is
//!   valid for a resume at `workers = 7` and vice versa.
//! * the RNG state is not journaled: the TOP-classifier stage is the
//!   only consumer of `StageCtx::rng` and no stage after it draws, so a
//!   resume either re-runs it from the fresh seed (identical stream) or
//!   loads its artifacts and never touches the RNG again.
//!
//! The safety gate is the one artifact that is not `Serialize` (it
//! holds a live report log behind a mutex). Its journal record stores
//! the logged [`ReportedItem`]s; restore reconstructs the gate from the
//! world's hash list and replays the log, which is observationally
//! identical — screening depends only on the hash list.
//!
//! [`Pipeline::run_resumable`]: super::Pipeline::run_resumable
//! [`PipelineOptions`]: super::PipelineOptions

use super::corruption::QuarantineEntry;
use super::ctx::require;
use super::{PipelineOptions, StageCtx, StageError, StageHealth};
use safety::{ReportedItem, SafetyGate};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};
use worldgen::WorldConfig;

/// Journal format version; bumped on any incompatible layout change so
/// old run directories are recomputed instead of misread.
const FORMAT: u32 = 1;

/// FNV-1a 64-bit over `bytes` — stable, dependency-free content hash
/// for run keys and record checksums.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn corrupt(path: impl Into<String>, reason: impl Into<String>) -> StageError {
    StageError::CorruptArtifact {
        path: path.into(),
        reason: reason.into(),
    }
}

/// The run key for `(config, options)`: a hash of both, rendered as 16
/// hex digits. `workers` is stripped first (artifacts are
/// worker-independent by the determinism contract).
pub fn run_key(config: &WorldConfig, options: &PipelineOptions) -> Result<String, StageError> {
    let config_json = serde_json::to_string(config)
        .map_err(|e| corrupt("run-key", format!("world config does not serialize: {e}")))?;
    let mut opts = serde_json::to_value(options)
        .map_err(|e| corrupt("run-key", format!("options do not serialize: {e}")))?;
    if let Some(map) = opts.as_object_mut() {
        map.remove("workers");
        // Shard count is execution topology, like `workers`: the
        // supervised driver produces the same artifacts at every shard
        // count, so it must not fork the run key either.
        map.remove("shards");
        // A batch run (`stream: None`) must keep the pre-stream run key,
        // so journals written before the epoch pipeline stay resumable.
        if map.get("stream") == Some(&serde::Value::Null) {
            map.remove("stream");
        }
        // Likewise an unpoisoned run keeps the pre-shard run key.
        if map.get("poison") == Some(&serde::Value::Null) {
            map.remove("poison");
        }
    }
    let opts_json = serde::render(&opts);
    Ok(format!(
        "{:016x}",
        fnv64(format!("{config_json}|{opts_json}").as_bytes())
    ))
}

/// What one stage checkpoint holds: the stage's artifact slots (as one
/// JSON object keyed by slot name), plus everything else the stage
/// contributed to the run — its quarantine entries, health events, and
/// item count — so a resumed run replays them exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageRecord {
    /// Slot name → serialized artifact.
    pub artifacts: serde::Value,
    /// Ledger entries this stage recorded.
    pub quarantined: Vec<QuarantineEntry>,
    /// Health events this stage triggered.
    pub health: Vec<StageHealth>,
    /// The stage's `StageTiming::items` count.
    pub items: usize,
}

/// On-disk envelope around a [`StageRecord`]. The payload is embedded
/// as a JSON *string* so the checksum verifies the exact bytes that
/// will be re-parsed — no canonicalization step to disagree over.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Envelope {
    format: u32,
    run_key: String,
    index: usize,
    stage: String,
    checksum: String,
    payload: String,
}

/// Result of trying to load one stage checkpoint.
#[derive(Debug)]
pub enum LoadOutcome {
    /// A verified record for this exact run and stage.
    Hit(StageRecord),
    /// No record on disk (fresh run, or the run was killed earlier).
    Miss,
    /// A record exists but failed validation; the caller must recompute
    /// the stage (and will overwrite the bad record).
    Rejected(String),
}

/// A run-scoped checkpoint journal: one directory per run key, one
/// verified JSON record per completed stage.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    run_key: String,
}

impl Journal {
    /// Opens (creating if needed) the run directory for `(config,
    /// options)` under `journal_dir`.
    pub fn open(
        journal_dir: &Path,
        config: &WorldConfig,
        options: &PipelineOptions,
    ) -> Result<Journal, StageError> {
        let key = run_key(config, options)?;
        let dir = journal_dir.join(format!("run-{key}"));
        fs::create_dir_all(&dir)
            .map_err(|e| StageError::io(format!("creating journal dir {}", dir.display()), e))?;
        Ok(Journal { dir, run_key: key })
    }

    /// The run key this journal is scoped to.
    pub fn run_key(&self) -> &str {
        &self.run_key
    }

    /// The run directory holding the stage records.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file(&self, index: usize, stage: &str) -> PathBuf {
        self.dir.join(format!("{index:02}-{stage}.json"))
    }

    /// Deletes every stage record in the run directory (`--journal-dir`
    /// without `--resume`: start the run clean).
    pub fn clear(&self) -> Result<(), StageError> {
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| StageError::io(format!("listing {}", self.dir.display()), e))?;
        for entry in entries {
            let entry =
                entry.map_err(|e| StageError::io(format!("listing {}", self.dir.display()), e))?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "json") {
                fs::remove_file(&path)
                    .map_err(|e| StageError::io(format!("removing {}", path.display()), e))?;
            }
        }
        Ok(())
    }

    /// Atomically writes the checkpoint for stage `index`: the record
    /// is rendered, checksummed, written to a temp file, and renamed
    /// into place — a kill mid-save leaves either the old record or
    /// none, never a torn one.
    pub fn save(&self, index: usize, stage: &str, record: &StageRecord) -> Result<(), StageError> {
        let payload = serde_json::to_string(record)
            .map_err(|e| corrupt(stage, format!("stage record does not serialize: {e}")))?;
        let envelope = Envelope {
            format: FORMAT,
            run_key: self.run_key.clone(),
            index,
            stage: stage.to_string(),
            checksum: format!("{:016x}", fnv64(payload.as_bytes())),
            payload,
        };
        let rendered = serde_json::to_string(&envelope)
            .map_err(|e| corrupt(stage, format!("envelope does not serialize: {e}")))?;
        let path = self.file(index, stage);
        let tmp = self.dir.join(format!(".tmp-{index:02}-{stage}"));
        fs::write(&tmp, rendered)
            .map_err(|e| StageError::io(format!("writing {}", tmp.display()), e))?;
        fs::rename(&tmp, &path)
            .map_err(|e| StageError::io(format!("renaming into {}", path.display()), e))?;
        Ok(())
    }

    /// Loads and verifies the checkpoint for stage `index`. Every
    /// validation failure is a [`LoadOutcome::Rejected`] — the caller
    /// recomputes; nothing invalid is ever returned as a hit.
    pub fn load(&self, index: usize, stage: &str) -> LoadOutcome {
        let path = self.file(index, stage);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::Miss,
            Err(e) => return LoadOutcome::Rejected(format!("unreadable: {e}")),
        };
        let envelope: Envelope = match serde_json::from_str(&text) {
            Ok(env) => env,
            Err(e) => return LoadOutcome::Rejected(format!("unparseable envelope: {e}")),
        };
        if envelope.format != FORMAT {
            return LoadOutcome::Rejected(format!(
                "format {} != expected {FORMAT}",
                envelope.format
            ));
        }
        if envelope.run_key != self.run_key {
            return LoadOutcome::Rejected(format!(
                "run key {} != expected {} (stale journal)",
                envelope.run_key, self.run_key
            ));
        }
        if envelope.index != index || envelope.stage != stage {
            return LoadOutcome::Rejected(format!(
                "record is {:02}-{}, expected {index:02}-{stage}",
                envelope.index, envelope.stage
            ));
        }
        let checksum = format!("{:016x}", fnv64(envelope.payload.as_bytes()));
        if checksum != envelope.checksum {
            return LoadOutcome::Rejected(format!(
                "checksum {checksum} != recorded {}",
                envelope.checksum
            ));
        }
        match serde_json::from_str::<StageRecord>(&envelope.payload) {
            Ok(record) => LoadOutcome::Hit(record),
            Err(e) => LoadOutcome::Rejected(format!("unparseable payload: {e}")),
        }
    }
}

// ---------------------------------------------------- stage codecs

fn put<T: Serialize>(
    map: &mut serde::Map,
    name: &'static str,
    slot: &Option<T>,
) -> Result<(), StageError> {
    let value = require(slot, name)?;
    map.insert(
        name,
        serde_json::to_value(value).map_err(|e| corrupt(name, format!("{e}")))?,
    );
    Ok(())
}

fn get<T: for<'any> Deserialize<'any>>(map: &serde::Map, name: &str) -> Result<T, StageError> {
    let value = map
        .get(name)
        .ok_or_else(|| corrupt(name, "slot missing from journal record"))?;
    serde_json::from_value(value.clone()).map_err(|e| corrupt(name, format!("{e}")))
}

fn as_map(artifacts: &serde::Value) -> Result<&serde::Map, StageError> {
    artifacts
        .as_object()
        .ok_or_else(|| corrupt("artifacts", "journal record is not an object"))
}

/// Maps stage names to the `StageCtx` slots they own. Used by both the
/// capture and restore paths so they can never drift apart; `safety` is
/// handled separately (its gate needs reconstruction, not
/// deserialization).
macro_rules! stage_slots {
    ($on_stage:ident, $name:expr) => {
        match $name {
            "extract" => $on_stage!(extraction, all_threads),
            "top_classifier" => $on_stage!(topcls, forums),
            "crawl" => $on_stage!(crawl, crawl_stats),
            "measure_images" => $on_stage!(measures),
            "nsfv" => $on_stage!(nsfv_validation, previews_nsfv, funnel),
            "provenance" => $on_stage!(provenance),
            "finance" => $on_stage!(harvest, earnings, currency),
            "actors" => $on_stage!(cohorts, fig4_points, key_actors, group_profiles, interests),
            other => {
                return Err(corrupt(
                    other,
                    "stage has no journal codec (graph/journal drift)",
                ))
            }
        }
    };
}

/// Serializes the named stage's artifact slots out of `ctx` into one
/// JSON object, ready for a [`StageRecord`].
pub fn capture_stage(name: &str, ctx: &StageCtx<'_>) -> Result<serde::Value, StageError> {
    let mut map = serde::Map::new();
    if name == "safety" {
        put(&mut map, "flagged", &ctx.flagged)?;
        put(&mut map, "safety", &ctx.safety)?;
        put(&mut map, "kept", &ctx.kept)?;
        let gate = require(&ctx.gate, "gate")?;
        let log: Vec<ReportedItem> = gate.log().items();
        map.insert(
            "gate_log",
            serde_json::to_value(&log).map_err(|e| corrupt("gate_log", format!("{e}")))?,
        );
        return Ok(serde::Value::Object(map));
    }
    macro_rules! capture {
        ($($slot:ident),+) => {{ $(put(&mut map, stringify!($slot), &ctx.$slot)?;)+ }};
    }
    stage_slots!(capture, name);
    Ok(serde::Value::Object(map))
}

/// Restores the named stage's artifact slots into `ctx` from a
/// journaled record. Inverse of [`capture_stage`].
pub fn restore_stage(
    name: &str,
    ctx: &mut StageCtx<'_>,
    artifacts: &serde::Value,
) -> Result<(), StageError> {
    let map = as_map(artifacts)?;
    if name == "safety" {
        ctx.flagged = Some(get(map, "flagged")?);
        ctx.safety = Some(get(map, "safety")?);
        ctx.kept = Some(get(map, "kept")?);
        // The gate is rebuilt from the world's hash list (screening
        // depends only on the list) and the report log replayed, so
        // finance's proof screening sees the identical gate state.
        let log: Vec<ReportedItem> = get(map, "gate_log")?;
        let gate = SafetyGate::new(ctx.world.hashlist.clone());
        for item in log {
            gate.log().record(item);
        }
        ctx.gate = Some(gate);
        return Ok(());
    }
    macro_rules! restore {
        ($($slot:ident),+) => {{ $(ctx.$slot = Some(get(map, stringify!($slot))?);)+ }};
    }
    stage_slots!(restore, name);
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn options(seed: u64) -> PipelineOptions {
        PipelineOptions {
            seed,
            ..PipelineOptions::default()
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ewhoring-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record() -> StageRecord {
        let mut map = serde::Map::new();
        map.insert("x", serde::Value::Str("artifact".into()));
        StageRecord {
            artifacts: serde::Value::Object(map),
            quarantined: Vec::new(),
            health: Vec::new(),
            items: 7,
        }
    }

    #[test]
    fn run_key_ignores_workers_but_not_seed_or_severity() {
        let config = WorldConfig::test_scale(1);
        let base = run_key(&config, &options(1)).unwrap();
        let w7 = run_key(
            &config,
            &PipelineOptions {
                workers: 7,
                ..options(1)
            },
        )
        .unwrap();
        assert_eq!(base, w7, "worker count must not invalidate a journal");
        assert_ne!(base, run_key(&config, &options(2)).unwrap());
        let corrupted = PipelineOptions {
            corruption_severity: 1.0,
            ..options(1)
        };
        assert_ne!(base, run_key(&config, &corrupted).unwrap());
        assert_ne!(
            base,
            run_key(&WorldConfig::test_scale(2), &options(1)).unwrap(),
            "a different world must not share a run dir"
        );
    }

    #[test]
    fn save_load_round_trip_is_a_hit() {
        let dir = tmp_dir("roundtrip");
        let journal = Journal::open(&dir, &WorldConfig::test_scale(3), &options(3)).unwrap();
        journal.save(0, "extract", &record()).unwrap();
        match journal.load(0, "extract") {
            LoadOutcome::Hit(rec) => {
                assert_eq!(rec.items, 7);
                assert_eq!(
                    rec.artifacts.as_object().unwrap().get("x"),
                    Some(&serde::Value::Str("artifact".into()))
                );
            }
            other => panic!("expected Hit, got {other:?}"),
        }
        assert!(matches!(
            journal.load(1, "top_classifier"),
            LoadOutcome::Miss
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_payload_is_rejected_not_reused() {
        let dir = tmp_dir("tamper");
        let journal = Journal::open(&dir, &WorldConfig::test_scale(4), &options(4)).unwrap();
        journal.save(2, "crawl", &record()).unwrap();
        let path = journal.dir().join("02-crawl.json");
        let tampered = fs::read_to_string(&path)
            .unwrap()
            .replace("artifact", "artifice");
        fs::write(&path, tampered).unwrap();
        assert!(matches!(journal.load(2, "crawl"), LoadOutcome::Rejected(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_run_key_is_rejected() {
        let dir = tmp_dir("stale");
        let config = WorldConfig::test_scale(5);
        let old = Journal::open(&dir, &config, &options(5)).unwrap();
        old.save(0, "extract", &record()).unwrap();
        // A journal for different options lives in a different run dir;
        // force the mismatch by copying the record across.
        let new = Journal::open(&dir, &config, &options(6)).unwrap();
        fs::copy(
            old.dir().join("00-extract.json"),
            new.dir().join("00-extract.json"),
        )
        .unwrap();
        match new.load(0, "extract") {
            LoadOutcome::Rejected(reason) => assert!(reason.contains("stale"), "{reason}"),
            other => panic!("expected Rejected, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_empties_the_run_dir() {
        let dir = tmp_dir("clear");
        let journal = Journal::open(&dir, &WorldConfig::test_scale(7), &options(7)).unwrap();
        journal.save(0, "extract", &record()).unwrap();
        journal.clear().unwrap();
        assert!(matches!(journal.load(0, "extract"), LoadOutcome::Miss));
        let _ = fs::remove_dir_all(&dir);
    }
}
