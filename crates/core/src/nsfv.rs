//! Stage 5: SFV / NSFV image classification (paper §4.4, Algorithm 1).
//!
//! The pipeline minimises researcher exposure to indecent material by
//! combining the NSFW nudity score with the OCR word count through the
//! exact thresholds printed in the paper:
//!
//! ```text
//! if NSFW < 0.01      → SFV
//! else if NSFW > 0.3  → NSFV
//! else if NSFW < 0.05 → SFV iff OCR > 10
//! else                → SFV iff OCR > 20
//! ```
//!
//! [`ImageMeasures`] bundles everything the pipeline ever extracts from an
//! image's pixels (robust hash, content digest, NSFW score, OCR count), so
//! a bitmap is rendered once and dropped immediately — the in-memory
//! equivalent of the paper's stream-process-delete handling.

use imagesim::measure::{self, MeasureScratch, Measures};
use imagesim::validation::{ValidationImage, ValidationLabel};
use imagesim::{Bitmap, RobustHash};
use serde::{Deserialize, Serialize};

/// Everything measured from one image's pixels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImageMeasures {
    /// Robust perceptual hash (safety screening, reverse search).
    pub hash: RobustHash,
    /// Exact-content digest (duplicate detection).
    pub digest: u64,
    /// OpenNSFW-analogue score.
    pub nsfw: f64,
    /// Tesseract-analogue recognised word count.
    pub ocr: usize,
}

impl From<Measures> for ImageMeasures {
    fn from(m: Measures) -> ImageMeasures {
        ImageMeasures {
            hash: m.hash,
            digest: m.digest,
            nsfw: m.nsfw,
            ocr: m.ocr_words,
        }
    }
}

impl ImageMeasures {
    /// Measures a rendered bitmap (the only place pixels are touched).
    /// Runs the fused single-pass kernel; bit-identical to
    /// [`ImageMeasures::reference`].
    pub fn of(bmp: &Bitmap) -> ImageMeasures {
        measure::measure(bmp).into()
    }

    /// [`ImageMeasures::of`] reusing per-worker scratch — the hot-loop
    /// form `measure_batch` uses so a worker measuring thousands of
    /// same-sized renders allocates nothing per image.
    pub fn of_with(bmp: &Bitmap, scratch: &mut MeasureScratch) -> ImageMeasures {
        measure::measure_with(bmp, scratch).into()
    }

    /// The multi-pass reference (one independent scan per measurement).
    /// Exists so tests can hold the fused kernel to bit-identity at the
    /// pipeline's own type.
    pub fn reference(bmp: &Bitmap) -> ImageMeasures {
        measure::reference(bmp).into()
    }

    /// Algorithm 1 verdict for this image.
    pub fn is_sfv(&self) -> bool {
        algorithm1_is_sfv(self.nsfw, self.ocr)
    }
}

/// Paper Algorithm 1, verbatim. Returns `true` for Safe-For-Viewing.
pub fn algorithm1_is_sfv(nsfw: f64, ocr: usize) -> bool {
    if nsfw < 0.01 {
        true
    } else if nsfw > 0.3 {
        false
    } else if nsfw < 0.05 {
        ocr > 10
    } else {
        ocr > 20
    }
}

/// Parameterised variant for the threshold-sweep ablation.
pub fn algorithm1_with_thresholds(
    nsfw: f64,
    ocr: usize,
    sfv_fast_path: f64,
    nsfv_cutoff: f64,
    low_band_split: f64,
    ocr_low: usize,
    ocr_high: usize,
) -> bool {
    if nsfw < sfv_fast_path {
        true
    } else if nsfw > nsfv_cutoff {
        false
    } else if nsfw < low_band_split {
        ocr > ocr_low
    } else {
        ocr > ocr_high
    }
}

/// Evaluation of Algorithm 1 on the labelled validation set (§4.4: "100%
/// detection of NSFV images … while having few false positives (nearly
/// 8%)").
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NsfvValidation {
    /// Nude images in the set.
    pub nude_total: usize,
    /// Nude images classified NSFV (must equal `nude_total` for the
    /// paper's 100%-recall claim).
    pub nude_detected: usize,
    /// Non-nude images in the set.
    pub non_nude_total: usize,
    /// Non-nude images wrongly classified NSFV.
    pub false_positives: usize,
}

impl NsfvValidation {
    /// NSFV recall over nude images.
    pub fn recall(&self) -> f64 {
        if self.nude_total == 0 {
            return 0.0;
        }
        self.nude_detected as f64 / self.nude_total as f64
    }

    /// False-positive rate over non-nude images.
    pub fn fp_rate(&self) -> f64 {
        if self.non_nude_total == 0 {
            return 0.0;
        }
        self.false_positives as f64 / self.non_nude_total as f64
    }
}

/// Runs Algorithm 1 over the validation set. Per-image rendering and
/// scoring run across `workers` threads (0 = all cores); the verdicts
/// fold serially in input order, so the counts are identical for any
/// worker count.
pub fn validate(images: &[ValidationImage], workers: usize) -> NsfvValidation {
    let verdicts: Vec<(ValidationLabel, bool)> = crate::par::par_map(images, workers, |img| {
        (img.label, !ImageMeasures::of(&img.spec.render()).is_sfv())
    });
    let mut v = NsfvValidation::default();
    for (label, nsfv) in verdicts {
        if label == ValidationLabel::Nude {
            v.nude_total += 1;
            if nsfv {
                v.nude_detected += 1;
            }
        } else {
            v.non_nude_total += 1;
            if nsfv {
                v.false_positives += 1;
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagesim::validation::build_validation_set;
    use imagesim::{ImageClass, ImageSpec, PaymentPlatform};

    #[test]
    fn algorithm1_branch_table() {
        assert!(algorithm1_is_sfv(0.0, 0)); // fast path
        assert!(algorithm1_is_sfv(0.009, 0));
        assert!(!algorithm1_is_sfv(0.31, 1000)); // hard NSFV regardless of text
        assert!(algorithm1_is_sfv(0.02, 11)); // low band needs OCR > 10
        assert!(!algorithm1_is_sfv(0.02, 10));
        assert!(algorithm1_is_sfv(0.2, 21)); // high band needs OCR > 20
        assert!(!algorithm1_is_sfv(0.2, 20));
    }

    #[test]
    fn parameterised_matches_default_at_paper_thresholds() {
        for &(nsfw, ocr) in &[(0.0, 0), (0.02, 15), (0.2, 30), (0.5, 0), (0.04, 2)] {
            assert_eq!(
                algorithm1_is_sfv(nsfw, ocr),
                algorithm1_with_thresholds(nsfw, ocr, 0.01, 0.3, 0.05, 10, 20)
            );
        }
    }

    #[test]
    fn validation_reaches_paper_operating_point() {
        let v = validate(&build_validation_set(0xA11CE), 2);
        // "100% detection of NSFV images".
        assert_eq!(v.nude_detected, v.nude_total, "recall {}", v.recall());
        // "few false positives (nearly 8%)".
        let fp = v.fp_rate();
        assert!((0.01..0.20).contains(&fp), "fp rate {fp}");
    }

    #[test]
    fn payment_screenshots_are_sfv() {
        for v in 0..20 {
            let spec = ImageSpec::of(
                ImageClass::PaymentScreenshot(PaymentPlatform::AmazonGiftCard),
                v,
            );
            let m = ImageMeasures::of(&spec.render());
            assert!(m.is_sfv(), "variant {v}: nsfw {} ocr {}", m.nsfw, m.ocr);
        }
    }

    #[test]
    fn chat_screenshots_are_sfv() {
        let mut sfv = 0;
        for v in 0..20 {
            let m = ImageMeasures::of(&ImageSpec::of(ImageClass::ChatScreenshot, v).render());
            if m.is_sfv() {
                sfv += 1;
            }
        }
        assert!(sfv >= 18, "{sfv}/20 chats SFV");
    }

    #[test]
    fn model_images_are_nsfv() {
        for v in 0..20 {
            for class in [ImageClass::ModelNude, ImageClass::ModelSexual] {
                let m = ImageMeasures::of(&ImageSpec::model_photo(class, v as u32 + 1, v).render());
                assert!(!m.is_sfv(), "{class:?} v{v}: nsfw {}", m.nsfw);
            }
        }
    }

    #[test]
    fn dressed_previews_are_mostly_nsfv() {
        // Dressed previews belong to the NSFV pile (they are pack
        // content), mostly caught by the mid-band OCR rule.
        let mut nsfv = 0;
        for v in 0..30 {
            let m = ImageMeasures::of(
                &ImageSpec::model_photo(ImageClass::ModelDressed, v as u32 + 1, v).render(),
            );
            if !m.is_sfv() {
                nsfv += 1;
            }
        }
        assert!(nsfv >= 25, "{nsfv}/30 dressed NSFV");
    }

    #[test]
    fn fused_of_matches_the_multipass_reference_bit_for_bit() {
        for v in 0..6 {
            let spec = ImageSpec::model_photo(ImageClass::ModelNude, v as u32 + 1, v);
            let bmp = spec.render();
            let fused = ImageMeasures::of(&bmp);
            let multi = ImageMeasures::reference(&bmp);
            assert_eq!(fused, multi, "variant {v}");
            assert_eq!(fused.nsfw.to_bits(), multi.nsfw.to_bits(), "variant {v}");
        }
    }

    #[test]
    fn measures_are_deterministic_and_consistent() {
        let spec = ImageSpec::model_photo(ImageClass::ModelNude, 7, 3);
        let a = ImageMeasures::of(&spec.render());
        let b = ImageMeasures::of(&spec.render());
        assert_eq!(a, b);
        assert_eq!(a.hash.distance(&b.hash), 0);
    }
}
