//! Stage 7: financial profits and monetisation (paper §5).
//!
//! Two measurements:
//!
//! * **Proof-of-earnings.** Threads whose headings contain "you make" or
//!   "earn" plus the Bragging Rights board yield posts with image links;
//!   a second query finds posts containing "proof" plus trading terms.
//!   The images are crawled, screened, NSFV-filtered, and the SFV
//!   remainder manually annotated (platform, currency, amount,
//!   transactions) and converted to USD with date-correct rates
//!   → Figures 2/3 and the §5.2 headline numbers.
//! * **Currency Exchange.** `[H]/[W]` headings of CE threads opened by
//!   ≥50-post eWhoring actors after they started eWhoring → Table 7.

use crate::crawl::snowball_whitelist;
use crate::nsfv::ImageMeasures;
use crimebb::{ActorId, BoardCategory, Corpus, PostId, ThreadId};
use safety::{HostingRegion, SafetyGate, ScreenOutcome, SiteType};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use synthrand::Day;
use textkit::hw::{parse_hw_heading, Currency};
use textkit::lexicon::{heading_is_earnings, post_is_proof_offer};
use textkit::url::extract_urls;
use websim::{FetchOutcome, SiteKind, StoredImage};
use worldgen::World;

/// One verified proof-of-earnings record (post-annotation).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProofRecord {
    /// The earning actor.
    pub actor: ActorId,
    /// Platform shown on the screenshot.
    pub platform: imagesim::PaymentPlatform,
    /// Amount converted to USD at the screenshot date.
    pub usd: f64,
    /// Itemised incoming transactions, when shown (~60% of proofs).
    pub transactions: Option<u32>,
    /// Month bucket (for the Figure 3 series).
    pub month_index: i32,
}

/// Counters for the §5.1 harvest funnel.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EarningsHarvest {
    /// Threads matched by the heading query + Bragging Rights (paper: 1 084).
    pub earnings_threads: usize,
    /// Posts contributing image links (paper: 1 276).
    pub posts_with_links: usize,
    /// Unique image URLs extracted (paper: 2 694).
    pub unique_urls: usize,
    /// Successfully downloaded images (paper: 2 366).
    pub downloaded: usize,
    /// Images excluded by the NSFV filter (paper: 299).
    pub filtered_nsfv: usize,
    /// Images flagged by the safety gate (paper: none in this corpus).
    pub filtered_csam: usize,
    /// Images manually analysed (paper: 2 067).
    pub analysed: usize,
    /// Analysed images that were not proofs (paper: 199).
    pub not_proof: usize,
    /// Verified proof records (paper: 1 868).
    pub proofs: Vec<ProofRecord>,
}

/// Aggregates over the harvest (§5.2, Figures 2/3).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EarningsAnalysis {
    /// Actors with at least one proof (paper: 661).
    pub actors: usize,
    /// Total reported earnings in USD (paper: ≈US$511k).
    pub total_usd: f64,
    /// Mean per reporting actor (paper: ≈US$774).
    pub mean_per_actor: f64,
    /// Highest per-actor total (paper: >US$20k).
    pub max_per_actor: f64,
    /// Per-actor `(usd_total, proof_image_count)` — Figure 2's two CDFs.
    pub per_actor: Vec<(f64, usize)>,
    /// Proofs with itemised transactions (paper: ~60%).
    pub detailed_proofs: usize,
    /// Mean USD per itemised transaction (paper: ≈US$41.90).
    pub avg_transaction_usd: f64,
    /// Proof-image counts per platform label (paper: AGC 934, PayPal 795,
    /// BTC 35).
    pub platform_counts: BTreeMap<String, usize>,
    /// Monthly `(month_index, agc, paypal)` series (Figure 3).
    pub monthly_platforms: Vec<(i32, usize, usize)>,
}

/// Harvests and annotates proof-of-earnings images.
///
/// `ewhoring_threads` is the stage-1 extraction; the Bragging Rights board
/// is pulled from the corpus directly. The safety gate screens every
/// download before anything else happens to it.
pub fn harvest_earnings(
    world: &World,
    gate: &SafetyGate,
    ewhoring_threads: &[ThreadId],
) -> EarningsHarvest {
    let corpus = &world.corpus;
    let mut harvest = EarningsHarvest::default();

    // 1. Candidate threads: earnings headings among eWhoring threads …
    let mut threads: Vec<ThreadId> = ewhoring_threads
        .iter()
        .copied()
        .filter(|&t| heading_is_earnings(&corpus.thread(t).heading))
        .collect();
    // … plus the Bragging Rights board.
    threads.extend(corpus.threads_in_category(world.hackforums, BoardCategory::BraggingRights));
    threads.sort_unstable();
    threads.dedup();
    harvest.earnings_threads = threads.len();

    // 2. Posts with image-sharing links in those threads.
    let mut candidate_posts: Vec<PostId> = Vec::new();
    for &t in &threads {
        candidate_posts.extend_from_slice(corpus.posts_in_thread(t));
    }
    // 3. Plus "proof" + trading-term posts anywhere in the eWhoring set.
    let thread_set: HashSet<ThreadId> = threads.iter().copied().collect();
    for &t in ewhoring_threads {
        if thread_set.contains(&t) {
            continue;
        }
        for &p in corpus.posts_in_thread(t) {
            if post_is_proof_offer(&corpus.post(p).body) {
                candidate_posts.push(p);
            }
        }
    }

    // 4. Extract unique image-sharing URLs.
    let whitelist = snowball_whitelist(corpus, &world.catalog, &threads);
    let whiteset: HashSet<&str> = whitelist.iter().map(String::as_str).collect();
    let mut seen_urls: HashSet<textkit::Url> = HashSet::new();
    let mut links: Vec<(textkit::Url, Day)> = Vec::new();
    for &p in &candidate_posts {
        let post = corpus.post(p);
        let mut any = false;
        for url in extract_urls(&post.body) {
            let domain = url.domain();
            let is_image_host = world
                .catalog
                .lookup(&domain)
                .is_some_and(|s| s.kind == SiteKind::ImageSharing);
            if is_image_host && whiteset.contains(domain.as_str()) && seen_urls.insert(url.clone())
            {
                links.push((url, post.date));
                any = true;
            }
        }
        if any {
            harvest.posts_with_links += 1;
        }
    }
    harvest.unique_urls = links.len();

    // 5. Crawl, screen, classify, annotate.
    for (url, posted) in links {
        let image: StoredImage = match world.web.fetch(&world.catalog, &url) {
            FetchOutcome::Image(img) => img,
            FetchOutcome::RemovalBanner(img) => img,
            _ => continue,
        };
        harvest.downloaded += 1;
        let m = ImageMeasures::of(&image.render());
        // Safety first — same precautions as the pack pipeline.
        if let ScreenOutcome::ReportedAndDeleted { .. } = gate.screen(
            &m.hash,
            &url.to_https(),
            posted,
            HostingRegion::NorthAmerica,
            SiteType::ImageSharing,
        ) {
            harvest.filtered_csam += 1;
            continue;
        }
        if !m.is_sfv() {
            harvest.filtered_nsfv += 1;
            continue;
        }
        harvest.analysed += 1;
        // Manual annotation (the §5.1 human step).
        match world.annotate_proof(&image.spec) {
            Some(info) => {
                let usd = world.fx.to_usd(info.amount, info.currency, info.taken);
                harvest.proofs.push(ProofRecord {
                    actor: info.actor,
                    platform: info.platform,
                    usd,
                    transactions: info.transactions,
                    month_index: info.taken.month_index(),
                });
            }
            None => harvest.not_proof += 1,
        }
    }
    harvest
}

/// Streaming variant of [`harvest_earnings`]: a pure sequential fold
/// over the global post timeline, resumable at any post index.
///
/// Posts carry dense chronological ids in streaming mode, so folding
/// `carry.cursor..post_count` each epoch visits every post exactly once
/// and in the same order whether the carry is warm (epoch slices) or
/// fresh (one pass) — fold composition is what makes the warm advance
/// byte-identical to the full recompute. Differences from the batch
/// path, which keeps its own code: candidate posts arrive in timeline
/// order rather than thread-major order, and the hosting whitelist
/// snowballs *at sight* (a catalogue-known domain posted in an earnings
/// thread joins the whitelist as its post is folded) instead of via the
/// batch fixpoint sweep.
pub fn harvest_earnings_stream(
    world: &World,
    gate: &SafetyGate,
    ewhoring_threads: &[ThreadId],
    carry: &mut crate::pipeline::epoch::FinanceCarry,
) -> EarningsHarvest {
    let corpus = &world.corpus;
    // Idempotent on warm carries; seeds fresh ones.
    for d in world.catalog.seed_whitelist() {
        carry.whiteset.insert(d.to_string());
    }
    let ewset: HashSet<ThreadId> = ewhoring_threads.iter().copied().collect();
    // Heading, board, and forum are fixed at thread creation, so this
    // predicate answers the same at every epoch.
    let is_earnings_thread = |t: ThreadId| -> bool {
        let th = corpus.thread(t);
        (ewset.contains(&t) && heading_is_earnings(&th.heading))
            || (corpus.board(th.board).category == BoardCategory::BraggingRights
                && corpus.forum_of_thread(t) == world.hackforums)
    };

    let n_actors = corpus.actors().len();
    carry.ew_posts_by_actor.resize(n_actors, 0);
    carry.first_ew_by_actor.resize(n_actors, Day(u32::MAX));

    let n = corpus.posts().len();
    for idx in carry.cursor..n {
        let post = corpus.post(PostId(idx as u32));
        let t = post.thread;
        if ewset.contains(&t) {
            // Table 7 fold: tally the post toward its author's eWhoring
            // count (and first-sight day) before the earnings/proof
            // filter below drops it. Counts and `min` are
            // order-insensitive, so the fold is exact per epoch slice.
            let i = post.author.0 as usize;
            carry.ew_posts_by_actor[i] += 1;
            carry.first_ew_by_actor[i] = carry.first_ew_by_actor[i].min(post.date);
        }
        let earnings = is_earnings_thread(t);
        let proof_offer = ewset.contains(&t) && post_is_proof_offer(&post.body);
        if !(earnings || proof_offer) {
            continue;
        }
        if earnings {
            // At-sight snowball, before this post's own links filter.
            for url in extract_urls(&post.body) {
                let domain = url.domain();
                if world.catalog.lookup(&domain).is_some() {
                    carry.whiteset.insert(domain);
                }
            }
        }
        let mut any = false;
        for url in extract_urls(&post.body) {
            let domain = url.domain();
            let is_image_host = world
                .catalog
                .lookup(&domain)
                .is_some_and(|s| s.kind == SiteKind::ImageSharing);
            if !is_image_host
                || !carry.whiteset.contains(domain.as_str())
                || !carry.seen_urls.insert(url.clone())
            {
                continue;
            }
            any = true;
            carry.unique_urls += 1;
            let image: StoredImage = match world.web.fetch(&world.catalog, &url) {
                FetchOutcome::Image(img) | FetchOutcome::RemovalBanner(img) => img,
                _ => continue,
            };
            carry.downloaded += 1;
            let m = ImageMeasures::of(&image.render());
            if let ScreenOutcome::ReportedAndDeleted { .. } = gate.screen(
                &m.hash,
                &url.to_https(),
                post.date,
                HostingRegion::NorthAmerica,
                SiteType::ImageSharing,
            ) {
                carry.filtered_csam += 1;
                continue;
            }
            if !m.is_sfv() {
                carry.filtered_nsfv += 1;
                continue;
            }
            carry.analysed += 1;
            match world.annotate_proof(&image.spec) {
                Some(info) => {
                    let usd = world.fx.to_usd(info.amount, info.currency, info.taken);
                    carry.proofs.push(ProofRecord {
                        actor: info.actor,
                        platform: info.platform,
                        usd,
                        transactions: info.transactions,
                        month_index: info.taken.month_index(),
                    });
                }
                None => carry.not_proof += 1,
            }
        }
        if any {
            carry.posts_with_links += 1;
        }
    }
    carry.cursor = n;

    // Thread-cursor fold: the funnel's earnings-thread tally and the
    // Table 7 Currency Exchange ledger, each thread visited exactly
    // once at creation. Board, forum, and heading are fixed then, so
    // both predicates answer the same at every later epoch — the folded
    // tallies equal a full rescan of the current corpus.
    let threads = corpus.threads();
    for th in &threads[carry.thread_cursor..] {
        if is_earnings_thread(th.id) {
            carry.earnings_threads += 1;
        }
        if corpus.board(th.board).category == BoardCategory::CurrencyExchange {
            carry.ce_threads.push((th.author, th.id));
        }
    }
    carry.thread_cursor = threads.len();

    EarningsHarvest {
        earnings_threads: carry.earnings_threads,
        posts_with_links: carry.posts_with_links,
        unique_urls: carry.unique_urls,
        downloaded: carry.downloaded,
        filtered_nsfv: carry.filtered_nsfv,
        filtered_csam: carry.filtered_csam,
        analysed: carry.analysed,
        not_proof: carry.not_proof,
        // Carried unfiltered: the per-run corruption plan is applied to
        // this copy by the stage, never to the carry itself.
        proofs: carry.proofs.clone(),
    }
}

/// Platform display label (Figure 3 legend).
pub fn platform_label(p: imagesim::PaymentPlatform) -> &'static str {
    match p {
        imagesim::PaymentPlatform::PayPal => "PayPal",
        imagesim::PaymentPlatform::AmazonGiftCard => "AGC",
        imagesim::PaymentPlatform::Bitcoin => "BTC",
        imagesim::PaymentPlatform::Cash => "Cash",
    }
}

/// Running earnings aggregates (§5.2): the fold form of
/// [`analyse_earnings`], carried across epochs in streaming mode.
///
/// [`EarningsAgg::fold`] consumes proofs in record order; the per-actor
/// USD sums therefore see their `+=` operands in the identical sequence
/// whether the proof list arrives in one batch (fresh carry) or in
/// per-epoch slices (warm carry) — fold composition over a prefix-stable
/// list is what makes the warm aggregate byte-identical to the batch
/// one. Sorted `Vec`s stand in for keyed maps so the aggregate both
/// journals cleanly through JSON and assembles deterministically
/// (equal-USD ties break in actor-id order, not hash order).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EarningsAgg {
    /// `(actor, usd_total, proof_count)`, sorted by actor id.
    pub per_actor: Vec<(ActorId, f64, usize)>,
    /// Proof-image counts per platform label.
    pub platform_counts: BTreeMap<String, usize>,
    /// `(month_index, agc, paypal)`, sorted by month.
    pub monthly: Vec<(i32, usize, usize)>,
    /// USD total over proofs with itemised transactions.
    pub tx_usd: f64,
    /// Itemised transaction count.
    pub tx_count: u64,
    /// Proofs with itemised transactions.
    pub detailed: usize,
}

impl EarningsAgg {
    /// Folds a slice of proof records into the running aggregates.
    pub fn fold(&mut self, proofs: &[ProofRecord]) {
        for proof in proofs {
            let e = match self
                .per_actor
                .binary_search_by_key(&proof.actor, |&(a, _, _)| a)
            {
                Ok(i) => &mut self.per_actor[i],
                Err(i) => {
                    self.per_actor.insert(i, (proof.actor, 0.0, 0));
                    &mut self.per_actor[i]
                }
            };
            e.1 += proof.usd;
            e.2 += 1;
            *self
                .platform_counts
                .entry(platform_label(proof.platform).to_string())
                .or_insert(0) += 1;
            let month = match self
                .monthly
                .binary_search_by_key(&proof.month_index, |&(m, _, _)| m)
            {
                Ok(i) => &mut self.monthly[i],
                Err(i) => {
                    self.monthly.insert(i, (proof.month_index, 0, 0));
                    &mut self.monthly[i]
                }
            };
            match proof.platform {
                imagesim::PaymentPlatform::AmazonGiftCard => month.1 += 1,
                imagesim::PaymentPlatform::PayPal => month.2 += 1,
                _ => {}
            }
            if let Some(tx) = proof.transactions {
                self.detailed += 1;
                self.tx_usd += proof.usd;
                self.tx_count += u64::from(tx);
            }
        }
    }

    /// Assembles the §5.2 analysis from the running aggregates.
    pub fn finish(&self) -> EarningsAnalysis {
        let mut totals: Vec<(f64, usize)> =
            self.per_actor.iter().map(|&(_, u, n)| (u, n)).collect();
        // Stable sort over actor-id-ordered input: equal USD totals
        // keep ascending actor order — fully deterministic.
        totals.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        let total_usd: f64 = totals.iter().map(|&(u, _)| u).sum();
        let actors = totals.len();

        EarningsAnalysis {
            actors,
            total_usd,
            mean_per_actor: if actors > 0 {
                total_usd / actors as f64
            } else {
                0.0
            },
            max_per_actor: totals.first().map_or(0.0, |&(u, _)| u),
            per_actor: totals,
            detailed_proofs: self.detailed,
            avg_transaction_usd: if self.tx_count > 0 {
                self.tx_usd / self.tx_count as f64
            } else {
                0.0
            },
            platform_counts: self.platform_counts.clone(),
            monthly_platforms: self.monthly.clone(),
        }
    }
}

/// Aggregates harvested proofs into the §5.2 numbers: a one-shot
/// [`EarningsAgg`] fold — the identical code path the streaming carry
/// folds through, which is the fold == batch equivalence by
/// construction.
pub fn analyse_earnings(harvest: &EarningsHarvest) -> EarningsAnalysis {
    let mut agg = EarningsAgg::default();
    agg.fold(&harvest.proofs);
    agg.finish()
}

/// Table 7: currency-exchange activity of committed eWhoring actors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CurrencyExchangeAnalysis {
    /// Actors qualifying (>50 eWhoring posts with CE threads; paper: 686).
    pub actors: usize,
    /// CE threads analysed (paper: 9 066).
    pub threads: usize,
    /// Offered counts per currency label.
    pub offered: BTreeMap<String, usize>,
    /// Wanted counts per currency label.
    pub wanted: BTreeMap<String, usize>,
}

/// Runs the Table 7 analysis.
///
/// "We only include Currency Exchange threads from actors who have write
/// more than 50 posts in eWhoring-threads … made after the actors started
/// in eWhoring."
pub fn analyse_currency_exchange(
    corpus: &Corpus,
    hackforums: crimebb::ForumId,
    ewhoring_threads: &[ThreadId],
) -> CurrencyExchangeAnalysis {
    let counts = corpus.posts_per_actor_in(ewhoring_threads);
    let mut analysis = CurrencyExchangeAnalysis::default();
    let mut qualifying: Vec<ActorId> = counts
        .iter()
        .filter(|&(_, &c)| c > 50)
        .map(|(&a, _)| a)
        .filter(|&a| corpus.actor(a).forum == hackforums)
        .collect();
    qualifying.sort_unstable();
    let thread_set: HashSet<ThreadId> = ewhoring_threads.iter().copied().collect();

    for actor in qualifying {
        let first_ew = corpus
            .actor_span_in_set(actor, &thread_set)
            .map(|(first, _)| first);
        let ce_threads =
            corpus.threads_started_by(actor, BoardCategory::CurrencyExchange, first_ew);
        if ce_threads.is_empty() {
            continue;
        }
        analysis.actors += 1;
        for t in ce_threads {
            analysis.threads += 1;
            let (offered, wanted) = match parse_hw_heading(&corpus.thread(t).heading) {
                Some(trade) => (trade.offered, trade.wanted),
                None => (Currency::Unknown, Currency::Unknown),
            };
            *analysis
                .offered
                .entry(offered.label().to_string())
                .or_insert(0) += 1;
            *analysis
                .wanted
                .entry(wanted.label().to_string())
                .or_insert(0) += 1;
        }
    }
    analysis
}

/// Streaming form of [`analyse_currency_exchange`]: reads the carried
/// per-actor eWhoring tallies and the CE-thread ledger instead of
/// rescanning every post in the extraction set.
///
/// Qualification (>50 eWhoring posts, HackForums membership, thread
/// started on or after the actor's first eWhoring post) is re-checked at
/// assembly because an actor can cross the post threshold epochs after
/// opening a CE thread. Every output is a count keyed by a `BTreeMap`
/// label, so assembly order cannot leak into the artifact — the result
/// equals the batch rescan whenever the carried tallies match the
/// corpus, which the fold in [`harvest_earnings_stream`] guarantees.
pub fn analyse_currency_exchange_stream(
    corpus: &Corpus,
    hackforums: crimebb::ForumId,
    carry: &crate::pipeline::epoch::FinanceCarry,
) -> CurrencyExchangeAnalysis {
    let mut analysis = CurrencyExchangeAnalysis::default();
    let mut counted: HashSet<ActorId> = HashSet::new();
    for &(actor, t) in &carry.ce_threads {
        let i = actor.0 as usize;
        if carry.ew_posts_by_actor[i] <= 50 || corpus.actor(actor).forum != hackforums {
            continue;
        }
        // `threads_started_by` only looks inside the actor's own forum.
        if corpus.forum_of_thread(t) != hackforums {
            continue;
        }
        if corpus.thread(t).created < carry.first_ew_by_actor[i] {
            continue;
        }
        counted.insert(actor);
        analysis.threads += 1;
        let (offered, wanted) = match parse_hw_heading(&corpus.thread(t).heading) {
            Some(trade) => (trade.offered, trade.wanted),
            None => (Currency::Unknown, Currency::Unknown),
        };
        *analysis
            .offered
            .entry(offered.label().to_string())
            .or_insert(0) += 1;
        *analysis
            .wanted
            .entry(wanted.label().to_string())
            .or_insert(0) += 1;
    }
    analysis.actors = counted.len();
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_ewhoring_threads;
    use worldgen::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::test_scale(0xF1A))
    }

    #[test]
    fn harvest_funnel_has_paper_shape() {
        let w = world();
        let set = extract_ewhoring_threads(&w.corpus);
        let gate = SafetyGate::new(w.hashlist.clone());
        let h = harvest_earnings(&w, &gate, &set.all_threads());
        assert!(h.earnings_threads > 0);
        assert!(h.unique_urls > 0);
        assert!(h.downloaded > 0 && h.downloaded <= h.unique_urls);
        assert!(h.analysed <= h.downloaded);
        assert_eq!(
            h.analysed,
            h.proofs.len() + h.not_proof,
            "analysis partitions into proof / not-proof"
        );
        // Most analysed images are actual proofs (paper: 78.9% of
        // downloads; 90% of analysed).
        let share = h.proofs.len() as f64 / h.analysed.max(1) as f64;
        assert!(share > 0.55, "proof share {share}");
    }

    #[test]
    fn earnings_analysis_matches_calibration() {
        // Per-actor means need a few dozen earners to stabilise; use a
        // slightly larger world than the other tests.
        let w = World::generate(worldgen::WorldConfig {
            scale: 0.06,
            ..worldgen::WorldConfig::test_scale(0xF1A)
        });
        let set = extract_ewhoring_threads(&w.corpus);
        let gate = SafetyGate::new(w.hashlist.clone());
        let h = harvest_earnings(&w, &gate, &set.all_threads());
        let a = analyse_earnings(&h);
        assert!(a.actors > 0);
        // Paper: mean US$774 per actor; heavy tail.
        assert!(
            (200.0..2_600.0).contains(&a.mean_per_actor),
            "mean {}",
            a.mean_per_actor
        );
        if a.actors >= 20 {
            assert!(a.max_per_actor > a.mean_per_actor * 2.0);
        }
        // Paper: avg transaction ≈ US$41.90.
        assert!(
            (20.0..70.0).contains(&a.avg_transaction_usd),
            "avg tx {}",
            a.avg_transaction_usd
        );
        // ~60% of proofs are detailed.
        let detail_share = a.detailed_proofs as f64 / h.proofs.len() as f64;
        assert!((0.4..0.8).contains(&detail_share), "detail {detail_share}");
    }

    /// The epoch-carry fold is prefix-stable: folding the proof list in
    /// arbitrary warm-advance slices then finishing equals the one-shot
    /// `analyse_earnings` byte-for-byte. Every accumulator is either an
    /// integer count or an f64 `+=` applied in the same per-proof order
    /// regardless of where the slice boundaries fall.
    #[test]
    fn earnings_agg_split_fold_matches_one_shot() {
        let w = world();
        let set = extract_ewhoring_threads(&w.corpus);
        let gate = SafetyGate::new(w.hashlist.clone());
        let h = harvest_earnings(&w, &gate, &set.all_threads());
        assert!(h.proofs.len() >= 3, "need proofs to split");
        let mut whole = EarningsAgg::default();
        whole.fold(&h.proofs);
        for split in [1, h.proofs.len() / 2, h.proofs.len() - 1] {
            let mut grown = EarningsAgg::default();
            grown.fold(&h.proofs[..split]);
            grown.fold(&h.proofs[split..]);
            assert_eq!(
                serde_json::to_string(&grown.finish()).unwrap(),
                serde_json::to_string(&whole.finish()).unwrap(),
                "split at {split} diverged"
            );
        }
        assert_eq!(
            serde_json::to_string(&whole.finish()).unwrap(),
            serde_json::to_string(&analyse_earnings(&h)).unwrap(),
            "fold-all + finish must be analyse_earnings"
        );
    }

    #[test]
    fn agc_and_paypal_dominate_platforms() {
        let w = world();
        let set = extract_ewhoring_threads(&w.corpus);
        let gate = SafetyGate::new(w.hashlist.clone());
        let a = analyse_earnings(&harvest_earnings(&w, &gate, &set.all_threads()));
        let agc = a.platform_counts.get("AGC").copied().unwrap_or(0);
        let pp = a.platform_counts.get("PayPal").copied().unwrap_or(0);
        let btc = a.platform_counts.get("BTC").copied().unwrap_or(0);
        assert!(agc + pp > btc * 5, "AGC {agc} PP {pp} BTC {btc}");
    }

    #[test]
    fn currency_exchange_marginals_match_table7_shape() {
        let w = world();
        let set = extract_ewhoring_threads(&w.corpus);
        let ce = analyse_currency_exchange(&w.corpus, w.hackforums, &set.all_threads());
        assert!(ce.actors > 0, "qualifying actors exist");
        assert!(ce.threads > 0);
        let offered_sum: usize = ce.offered.values().sum();
        let wanted_sum: usize = ce.wanted.values().sum();
        assert_eq!(offered_sum, ce.threads);
        assert_eq!(wanted_sum, ce.threads);
        // BTC is the most wanted currency; AGC offered far exceeds wanted.
        let btc_wanted = ce.wanted.get("BTC").copied().unwrap_or(0);
        let max_wanted = ce.wanted.values().copied().max().unwrap_or(0);
        assert_eq!(btc_wanted, max_wanted, "{:?}", ce.wanted);
        let agc_off = ce.offered.get("AGC").copied().unwrap_or(0);
        let agc_want = ce.wanted.get("AGC").copied().unwrap_or(0);
        assert!(agc_off > agc_want * 2, "AGC {agc_off} vs {agc_want}");
    }

    #[test]
    fn per_actor_image_counts_rise_with_earnings() {
        // Figure 2 (right): actors reporting more earnings post more
        // proofs.
        let w = world();
        let set = extract_ewhoring_threads(&w.corpus);
        let gate = SafetyGate::new(w.hashlist.clone());
        let a = analyse_earnings(&harvest_earnings(&w, &gate, &set.all_threads()));
        if a.per_actor.len() < 10 {
            return;
        }
        let top_half_imgs: f64 = a.per_actor[..a.per_actor.len() / 2]
            .iter()
            .map(|&(_, n)| n as f64)
            .sum::<f64>()
            / (a.per_actor.len() / 2) as f64;
        let bottom_half_imgs: f64 = a.per_actor[a.per_actor.len() / 2..]
            .iter()
            .map(|&(_, n)| n as f64)
            .sum::<f64>()
            / (a.per_actor.len() - a.per_actor.len() / 2) as f64;
        assert!(
            top_half_imgs > bottom_half_imgs,
            "top {top_half_imgs} vs bottom {bottom_half_imgs}"
        );
    }
}
