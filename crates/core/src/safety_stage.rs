//! Stage 4: filtering known child-abuse material (paper §4.3).
//!
//! Every downloaded image is hashed and checked against the hash list
//! *before* any other analysis. "Each image matching the PhotoDNA list was
//! immediately reported to the IWF and deleted from our servers. We also
//! reported the URLs of other sites where these images were located,
//! obtained from the reverse image search."
//!
//! Hosting metadata for reports comes from [`geoip_region`] /
//! [`site_type_of`] — deterministic lookups standing in for geo-IP and
//! manual site inspection.

use crate::nsfv::ImageMeasures;
use revsearch::ReverseIndex;
use safety::{HostingRegion, IwfSummary, SafetyGate, ScreenOutcome, SiteType};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use synthrand::Day;
use websim::{DomainCategory, OriginRegistry};

/// Outcome of the safety stage over a batch of downloads.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SafetyStageResult {
    /// Indices (into the caller's download list) that were flagged and
    /// must be deleted.
    pub flagged: Vec<usize>,
    /// Threads whose content produced matches (paper: 36 threads).
    pub flagged_threads: Vec<crimebb::ThreadId>,
    /// The §4.3 aggregate built from the report log.
    pub summary: IwfSummary,
}

/// Deterministic geo-IP analogue: hosting region from a domain name.
/// Calibrated to the paper's actioned-URL geography (1 UK / 30 North
/// America / 30 other Europe).
pub fn geoip_region(domain: &str) -> HostingRegion {
    let h = fnv(domain);
    match h % 100 {
        0 | 1 => HostingRegion::Uk,
        2..=48 => HostingRegion::NorthAmerica,
        49..=95 => HostingRegion::OtherEurope,
        _ => HostingRegion::Other,
    }
}

/// Site type of an origin-domain category (manual inspection analogue).
pub fn site_type_of(category: DomainCategory) -> SiteType {
    match category {
        DomainCategory::PhotoSharing => SiteType::ImageSharing,
        DomainCategory::Forum => SiteType::Forum,
        DomainCategory::Blog => SiteType::Blog,
        DomainCategory::SocialNetwork => SiteType::SocialNetwork,
        DomainCategory::Entertainment => SiteType::VideoChannel,
        _ => SiteType::Regular,
    }
}

fn fnv(text: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01B3);
    }
    h
}

/// Screens measured downloads. `items` pairs each download's measures with
/// its source URL and thread; `today` is the processing date.
///
/// For every match, the source URL is reported, plus every *other* URL the
/// reverse index knows for that hash (the paper reported those too).
pub fn screen_downloads(
    gate: &SafetyGate,
    index: &ReverseIndex,
    origins: &OriginRegistry,
    items: &[(ImageMeasures, String, crimebb::ThreadId)],
    today: Day,
) -> SafetyStageResult {
    let mut result = SafetyStageResult::default();
    let mut flagged_threads: HashSet<crimebb::ThreadId> = HashSet::new();
    for (i, (measures, url, thread)) in items.iter().enumerate() {
        let outcome = gate.screen(
            &measures.hash,
            url,
            today,
            geoip_region(url),
            SiteType::ImageSharing, // downloads come from image hosts / packs
        );
        if let ScreenOutcome::ReportedAndDeleted { .. } = outcome {
            result.flagged.push(i);
            flagged_threads.insert(*thread);
            // Report every other located copy. Location uses the *safety*
            // threshold, not the loose reverse-search one: reporting a
            // lookalike's URLs to a hotline would be a serious false
            // positive.
            for m in index.query_with_threshold(&measures.hash, safety::SAFETY_MATCH_THRESHOLD) {
                let domain = origins.get(m.domain as usize);
                let _ = gate.screen(
                    &measures.hash,
                    &m.url,
                    today,
                    geoip_region(&domain.name),
                    site_type_of(domain.category),
                );
            }
        }
    }
    let mut threads: Vec<crimebb::ThreadId> = flagged_threads.into_iter().collect();
    threads.sort_unstable();
    result.flagged_threads = threads;
    result.summary = IwfSummary::from_log(gate.log());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::crawl_tops;
    use worldgen::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::test_scale(0x5AFE))
    }

    /// Measures all pack images of the crawl, keeping source metadata.
    fn measured_items(w: &World) -> Vec<(ImageMeasures, String, crimebb::ThreadId)> {
        let tops: Vec<crimebb::ThreadId> = w
            .truth
            .thread_roles
            .iter()
            .filter(|&(_, &r)| r == worldgen::ThreadRole::Top)
            .map(|(&t, _)| t)
            .collect();
        let mut tops = tops;
        tops.sort_unstable();
        let crawl = crawl_tops(&w.corpus, &w.catalog, &w.web, &tops);
        let mut items = Vec::new();
        for pack in &crawl.packs {
            for img in &pack.images {
                items.push((
                    ImageMeasures::of(&img.render()),
                    pack.link.url.to_https(),
                    pack.link.thread,
                ));
            }
        }
        items
    }

    #[test]
    fn planted_material_is_flagged_and_summarised() {
        let w = world();
        let items = measured_items(&w);
        let gate = SafetyGate::new(w.hashlist.clone());
        let r = screen_downloads(
            &gate,
            &w.index,
            &w.origins,
            &items,
            Day::from_ymd(2019, 4, 1),
        );
        // Packs behind dead links are not downloadable, so we catch a
        // subset of planted images — but never zero at this scale.
        assert!(!r.flagged.is_empty(), "no planted material caught");
        assert!(r.summary.matched_cases >= 1);
        assert!(!r.flagged_threads.is_empty());
        // Every flagged thread is a genuine planted thread.
        for t in &r.flagged_threads {
            assert!(w.truth.csam_threads.contains(t), "{t} not planted");
        }
    }

    #[test]
    fn no_false_positives_on_clean_worlds() {
        let mut cfg = WorldConfig::test_scale(0xC1EA);
        cfg.csam_images = 0;
        let w = World::generate(cfg);
        let items = measured_items(&w);
        assert!(!items.is_empty());
        let gate = SafetyGate::new(w.hashlist.clone());
        let r = screen_downloads(
            &gate,
            &w.index,
            &w.origins,
            &items,
            Day::from_ymd(2019, 4, 1),
        );
        assert!(r.flagged.is_empty());
        assert_eq!(r.summary.total_reports, 0);
    }

    #[test]
    fn geoip_is_deterministic_and_plausibly_distributed() {
        assert_eq!(geoip_region("tube1.example"), geoip_region("tube1.example"));
        let mut na = 0;
        let mut uk = 0;
        for i in 0..1000 {
            match geoip_region(&format!("host{i}.example")) {
                HostingRegion::NorthAmerica => na += 1,
                HostingRegion::Uk => uk += 1,
                _ => {}
            }
        }
        assert!((350..600).contains(&na), "NA {na}");
        assert!(uk < 60, "UK {uk} should be rare");
    }

    #[test]
    fn site_types_map_master_categories() {
        assert_eq!(
            site_type_of(DomainCategory::PhotoSharing),
            SiteType::ImageSharing
        );
        assert_eq!(site_type_of(DomainCategory::Forum), SiteType::Forum);
        assert_eq!(site_type_of(DomainCategory::Porn), SiteType::Regular);
    }
}
