//! The eWhoring measurement pipeline (the paper's primary contribution).
//!
//! This crate implements, end to end, the semi-automatic pipeline of
//! *Measuring eWhoring* (Pastrana, Hutchings, Thomas, Tapiador — IMC 2019),
//! paper Figure 1:
//!
//! 1. [`extract`] — pull eWhoring-related conversations out of the corpus
//!    (§3: heading keywords + the dedicated Hackforums board) → Table 1;
//! 2. [`topcls`] — classify Threads Offering Packs with the hybrid
//!    Linear-SVM + heuristics classifier (§4.1), trained on a 1 000-thread
//!    annotated sample, evaluated with precision/recall/F1;
//! 3. [`crawl`] — extract URLs from TOPs, snowball-sample the hosting
//!    whitelist, and download previews and packs (§4.2) → Tables 3/4;
//! 4. [`safety_stage`] — hash every download against the known-CSAM list
//!    *before any analysis*, report and delete matches (§4.3);
//! 5. [`nsfv`] — classify Safe-For-Viewing vs Not-Safe-For-Viewing with
//!    Algorithm 1 exactly as printed (§4.4);
//! 6. [`provenance`] — reverse-image-search previews and per-pack samples,
//!    check Wayback for seen-before ordering, classify provenance domains
//!    (§4.5) → Tables 5/6;
//! 7. [`finance`] — harvest proof-of-earnings posts, annotate, convert to
//!    USD with date-correct rates, and analyse the Currency Exchange board
//!    (§5) → Figures 2/3, Table 7;
//! 8. [`actors`] — cohort statistics, social graph, key-actor selection,
//!    and interest evolution (§6) → Tables 8/9/10, Figures 4/5.
//!
//! [`pipeline::Pipeline`] orchestrates all stages; [`report`] renders every
//! table and figure in the paper's layout. [`intervention`] additionally
//! simulates the §8 shared-blacklist countermeasure the paper proposes as
//! future work.
//!
//! The pipeline treats the generated [`worldgen::World`] as its environment
//! and is *measurement-honest*: ground truth is consulted only where the
//! paper used a human — the annotation sample that trains the classifier
//! and the manual annotation of proof-of-earnings images.

pub mod actors;
pub mod crawl;
pub mod extract;
pub mod features;
pub mod finance;
pub mod intervention;
pub mod nsfv;
pub mod par;
pub mod pipeline;
pub mod provenance;
pub mod report;
pub mod safety_stage;
pub mod topcls;

pub use crawl::{CrawlStats, KindTally, RetryPolicy};
pub use pipeline::{Pipeline, PipelineReport, StageTiming};
