//! Stage 3: URL extraction, whitelist snowball, and crawling (paper §4.2).
//!
//! "Using regular expressions we extract URLs from the content of each
//! extracted TOP. Using a whitelist of known image sharing sites … and
//! cloud storage services … This whitelist is compiled using a snowball
//! sampling technique."
//!
//! The crawler is *ethical by construction*: registration-walled content
//! (Dropbox, Google Drive) is skipped, and nothing is ever posted or paid
//! to unlock reply-gated packs.
//!
//! It is also *resilient by construction*: the paper's crawl ran for
//! weeks against flaky hosts, so transient failures (timeouts, 429s,
//! 5xx, truncated archives — injected here by a [`FaultPlan`]) are
//! retried with exponential backoff and seeded jitter, a per-host
//! circuit breaker stops hammering hosts that fail consecutively, and a
//! per-host request budget bounds total traffic. A link that cannot be
//! fetched is recorded as unreachable — the stage never aborts.

use crimebb::{Corpus, PostId, ThreadId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use synthrand::Day;
use textkit::url::{extract_urls, Url};
use websim::{
    FaultPlan, FetchAttempt, FetchOutcome, SiteCatalog, SiteKind, StoredImage, TransientFault,
    WebStore,
};

/// One link found in a TOP, classified by host kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FoundLink {
    /// The URL as posted.
    pub url: Url,
    /// What kind of site hosts it.
    pub kind: SiteKind,
    /// Thread the link was posted in.
    pub thread: ThreadId,
    /// Post carrying the link.
    pub post: PostId,
    /// Post date (needed for the §4.5 seen-before comparison).
    pub posted: Day,
}

/// A successfully downloaded single image.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Download {
    /// The hosted image (spec + baked-in transform).
    pub image: StoredImage,
    /// Source link metadata.
    pub link: FoundLink,
    /// True when the host served a removal banner instead of the content.
    pub is_banner: bool,
}

/// A successfully downloaded pack archive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackDownload {
    /// Archive contents.
    pub images: Vec<StoredImage>,
    /// Source link metadata.
    pub link: FoundLink,
}

/// Everything stage 3 produces.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CrawlResult {
    /// The snowballed whitelist of hosting domains.
    pub whitelist: Vec<String>,
    /// Links per image-sharing domain (Table 3).
    pub image_links_by_site: BTreeMap<String, usize>,
    /// Links per cloud-storage domain (Table 4).
    pub cloud_links_by_site: BTreeMap<String, usize>,
    /// TOPs that contained at least one whitelisted link (paper: 774 of
    /// 4 137, 18.71%).
    pub linked_tops: usize,
    /// TOPs examined.
    pub total_tops: usize,
    /// Downloaded single images (previews and banners).
    pub previews: Vec<Download>,
    /// Downloaded packs.
    pub packs: Vec<PackDownload>,
    /// Links that failed (rotted, defunct host).
    pub dead_links: usize,
    /// Links skipped behind registration walls.
    pub registration_blocked: usize,
    /// Links abandoned after transient failures (retries exhausted,
    /// breaker open, or host budget spent). Zero with faults disabled.
    pub unreachable_links: usize,
}

/// Retry/backoff/breaker knobs for the resilient crawler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt of a link.
    pub max_retries: u32,
    /// First-retry backoff, µs; doubles per retry.
    pub base_backoff_us: u64,
    /// Backoff ceiling, µs (jitter included).
    pub max_backoff_us: u64,
    /// Consecutive transient failures on one host that trip its breaker;
    /// a tripped breaker stays open for the rest of the crawl and every
    /// later link on that host is recorded unreachable without a fetch.
    pub breaker_threshold: u32,
    /// Maximum fetch attempts (including retries) per host.
    pub per_host_budget: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff_us: 50_000,
            max_backoff_us: 1_600_000,
            breaker_threshold: 6,
            per_host_budget: 100_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based) of `url`:
    /// exponential in the retry count, capped, plus seeded jitter of up
    /// to half the base — deterministic in the plan seed.
    fn backoff_us(&self, plan: &FaultPlan, url: &Url, retry: u32) -> u64 {
        let exp = self
            .base_backoff_us
            .saturating_mul(1u64 << (retry - 1).min(20))
            .min(self.max_backoff_us);
        let jitter = plan.backoff_jitter_us(url, retry, self.base_backoff_us / 2);
        (exp + jitter).min(self.max_backoff_us)
    }
}

/// Tally split by hosting-site kind (Tables 3/4 split).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindTally {
    /// Image-sharing hosts.
    pub image_sharing: u64,
    /// Cloud-storage hosts.
    pub cloud_storage: u64,
}

impl KindTally {
    fn slot(&mut self, kind: SiteKind) -> &mut u64 {
        match kind {
            SiteKind::ImageSharing => &mut self.image_sharing,
            SiteKind::CloudStorage => &mut self.cloud_storage,
        }
    }

    /// Sum over both kinds.
    pub fn total(&self) -> u64 {
        self.image_sharing + self.cloud_storage
    }
}

/// Crawler health counters: how much work the resilience layer did.
/// All-zero (except `attempts`) when faults are disabled.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlStats {
    /// Fetch attempts issued, including retries, per site kind.
    pub attempts: KindTally,
    /// Re-attempts after a transient fault, per site kind.
    pub retries: KindTally,
    /// Injected timeouts observed.
    pub timeouts: u64,
    /// Injected 429 rate limits observed.
    pub rate_limited: u64,
    /// Injected 5xx server errors observed.
    pub server_errors: u64,
    /// Truncated pack archives observed (re-downloaded on retry).
    pub truncated_archives: u64,
    /// Circuit-breaker trip events (at most one per host).
    pub breaker_trips: u64,
    /// Links skipped because their host's breaker was already open.
    pub breaker_skipped: usize,
    /// Links abandoned because the per-host budget ran out.
    pub budget_exhausted: usize,
    /// Links that used every retry and still failed.
    pub retries_exhausted: usize,
    /// Simulated wait, µs (service latency + backoff), per site kind.
    pub wait_us: KindTally,
}

/// Per-host crawl state: breaker and budget accounting.
#[derive(Debug, Default)]
struct HostState {
    consecutive_failures: u32,
    tripped: bool,
    attempts_used: u64,
}

/// Builds the hosting whitelist by snowball sampling: start from the seed
/// list; for every unknown domain found in the TOPs, "visit the landing
/// site" (a catalogue lookup) and add it when it turns out to host images
/// or files; repeat until no new domains appear.
pub fn snowball_whitelist(
    corpus: &Corpus,
    catalog: &SiteCatalog,
    tops: &[ThreadId],
) -> Vec<String> {
    let mut whitelist: HashSet<String> = catalog
        .seed_whitelist()
        .into_iter()
        .map(String::from)
        .collect();
    let mut inspected: HashSet<String> = whitelist.clone();
    loop {
        let mut grew = false;
        for &t in tops {
            for &p in corpus.posts_in_thread(t) {
                for url in extract_urls(&corpus.post(p).body) {
                    let domain = url.domain();
                    if inspected.contains(&domain) {
                        continue;
                    }
                    inspected.insert(domain.clone());
                    // "Visiting their landing sites": the catalogue lookup
                    // answers whether this is a hosting service.
                    if catalog.lookup(&domain).is_some() {
                        whitelist.insert(domain);
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    let mut out: Vec<String> = whitelist.into_iter().collect();
    out.sort_unstable();
    out
}

/// Extracts whitelisted links from the detected TOPs.
pub fn extract_links(
    corpus: &Corpus,
    catalog: &SiteCatalog,
    whitelist: &[String],
    tops: &[ThreadId],
) -> (Vec<FoundLink>, usize) {
    let whiteset: HashSet<&str> = whitelist.iter().map(String::as_str).collect();
    let mut links = Vec::new();
    let mut linked_tops = 0;
    for &t in tops {
        let mut any = false;
        for &p in corpus.posts_in_thread(t) {
            let post = corpus.post(p);
            for url in extract_urls(&post.body) {
                let domain = url.domain();
                if !whiteset.contains(domain.as_str()) {
                    continue;
                }
                let kind = catalog
                    .lookup(&domain)
                    .map(|s| s.kind)
                    .expect("whitelisted domains are in the catalogue");
                any = true;
                links.push(FoundLink {
                    url,
                    kind,
                    thread: t,
                    post: p,
                    posted: post.date,
                });
            }
        }
        if any {
            linked_tops += 1;
        }
    }
    (links, linked_tops)
}

/// Fetches every link, producing downloads and mortality statistics.
/// Equivalent to [`crawl_links_with_faults`] with faults disabled.
pub fn crawl_links(catalog: &SiteCatalog, web: &WebStore, links: Vec<FoundLink>) -> CrawlResult {
    crawl_links_with_faults(
        catalog,
        web,
        links,
        &FaultPlan::disabled(),
        &RetryPolicy::default(),
    )
    .0
}

/// Fetches every link through the fault plan, retrying transient
/// failures per `policy`. Permanent outcomes (404, registration wall)
/// are never retried; transient faults back off exponentially with
/// seeded jitter; hosts that fail `breaker_threshold` times in a row
/// trip their breaker and every later link on them is recorded as
/// unreachable — the crawl itself always completes.
pub fn crawl_links_with_faults(
    catalog: &SiteCatalog,
    web: &WebStore,
    links: Vec<FoundLink>,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> (CrawlResult, CrawlStats) {
    let mut result = CrawlResult::default();
    let mut stats = CrawlStats::default();
    let mut hosts: HashMap<String, HostState> = HashMap::new();
    for link in links {
        // Tally under the catalogue's canonical name so subdomain-hosted
        // services (drive.google.com) group correctly. Tables 3/4 count
        // *observed* links, so the tally happens before any fetch.
        let domain = catalog
            .lookup(&link.url.domain())
            .map_or_else(|| link.url.domain(), |s| s.domain.to_string());
        match link.kind {
            SiteKind::ImageSharing => {
                *result
                    .image_links_by_site
                    .entry(domain.clone())
                    .or_insert(0) += 1;
            }
            SiteKind::CloudStorage => {
                *result
                    .cloud_links_by_site
                    .entry(domain.clone())
                    .or_insert(0) += 1;
            }
        }
        let host = hosts.entry(domain).or_default();
        if host.tripped {
            stats.breaker_skipped += 1;
            result.unreachable_links += 1;
            continue;
        }
        let mut attempt: u32 = 0;
        loop {
            if host.attempts_used >= policy.per_host_budget {
                stats.budget_exhausted += 1;
                result.unreachable_links += 1;
                break;
            }
            host.attempts_used += 1;
            *stats.attempts.slot(link.kind) += 1;
            *stats.wait_us.slot(link.kind) += plan.latency_us(catalog, &link.url, attempt);
            match plan.fetch(web, catalog, &link.url, attempt) {
                FetchAttempt::Delivered(outcome) => {
                    host.consecutive_failures = 0;
                    match outcome {
                        FetchOutcome::Image(image) => result.previews.push(Download {
                            image,
                            link,
                            is_banner: false,
                        }),
                        FetchOutcome::RemovalBanner(image) => result.previews.push(Download {
                            image,
                            link,
                            is_banner: true,
                        }),
                        FetchOutcome::Pack(images) => {
                            result.packs.push(PackDownload { images, link })
                        }
                        FetchOutcome::NotFound => result.dead_links += 1,
                        FetchOutcome::RegistrationRequired => result.registration_blocked += 1,
                    }
                    break;
                }
                FetchAttempt::Fault(fault) => {
                    match fault {
                        TransientFault::Timeout => stats.timeouts += 1,
                        TransientFault::RateLimited => stats.rate_limited += 1,
                        TransientFault::ServerError => stats.server_errors += 1,
                        TransientFault::TruncatedArchive => stats.truncated_archives += 1,
                    }
                    host.consecutive_failures += 1;
                    if host.consecutive_failures >= policy.breaker_threshold {
                        host.tripped = true;
                        stats.breaker_trips += 1;
                        result.unreachable_links += 1;
                        break;
                    }
                    if attempt >= policy.max_retries {
                        stats.retries_exhausted += 1;
                        result.unreachable_links += 1;
                        break;
                    }
                    attempt += 1;
                    *stats.retries.slot(link.kind) += 1;
                    *stats.wait_us.slot(link.kind) += policy.backoff_us(plan, &link.url, attempt);
                }
            }
        }
    }
    (result, stats)
}

/// Runs the full stage: snowball → extract → crawl (faults disabled).
pub fn crawl_tops(
    corpus: &Corpus,
    catalog: &SiteCatalog,
    web: &WebStore,
    tops: &[ThreadId],
) -> CrawlResult {
    crawl_tops_with_faults(
        corpus,
        catalog,
        web,
        tops,
        &FaultPlan::disabled(),
        &RetryPolicy::default(),
    )
    .0
}

/// Runs the full stage through a fault plan: snowball → extract →
/// resilient crawl, returning the result plus the crawler's health
/// counters.
pub fn crawl_tops_with_faults(
    corpus: &Corpus,
    catalog: &SiteCatalog,
    web: &WebStore,
    tops: &[ThreadId],
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> (CrawlResult, CrawlStats) {
    let whitelist = snowball_whitelist(corpus, catalog, tops);
    let (links, linked_tops) = extract_links(corpus, catalog, &whitelist, tops);
    let (mut result, stats) = crawl_links_with_faults(catalog, web, links, plan, policy);
    result.whitelist = whitelist;
    result.linked_tops = linked_tops;
    result.total_tops = tops.len();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::{World, WorldConfig};

    fn world_and_tops() -> (World, Vec<ThreadId>) {
        let w = World::generate(WorldConfig::test_scale(0xC4A));
        // Crawl ground-truth TOPs directly (classifier is tested separately).
        let tops: Vec<ThreadId> = w
            .truth
            .thread_roles
            .iter()
            .filter(|&(_, &r)| r == worldgen::ThreadRole::Top)
            .map(|(&t, _)| t)
            .collect();
        (w, tops)
    }

    #[test]
    fn snowball_recovers_non_seed_hosts() {
        let (w, mut tops) = world_and_tops();
        tops.sort_unstable();
        let whitelist = snowball_whitelist(&w.corpus, &w.catalog, &tops);
        let seed = w.catalog.seed_whitelist();
        assert!(whitelist.len() >= seed.len());
        // At least one non-seed host appears in generated links over a
        // whole world (imagetwist etc. carry ~8% of preview traffic).
        let grew = whitelist.iter().any(|d| !seed.contains(&d.as_str()));
        assert!(grew, "snowball never grew beyond the seed list");
    }

    #[test]
    fn linked_top_share_matches_paper() {
        let (w, mut tops) = world_and_tops();
        tops.sort_unstable();
        let result = crawl_tops(&w.corpus, &w.catalog, &w.web, &tops);
        let share = result.linked_tops as f64 / result.total_tops as f64;
        // Paper: 18.71% of TOPs yielded links.
        assert!((0.08..0.35).contains(&share), "linked share {share}");
    }

    #[test]
    fn imgur_and_mediafire_dominate_tallies() {
        let (w, mut tops) = world_and_tops();
        tops.sort_unstable();
        let r = crawl_tops(&w.corpus, &w.catalog, &w.web, &tops);
        let top_image = r
            .image_links_by_site
            .iter()
            .max_by_key(|&(_, &c)| c)
            .map(|(d, _)| d.clone());
        let top_cloud = r
            .cloud_links_by_site
            .iter()
            .max_by_key(|&(_, &c)| c)
            .map(|(d, _)| d.clone());
        assert_eq!(top_image.as_deref(), Some("imgur.com"));
        assert_eq!(top_cloud.as_deref(), Some("mediafire.com"));
    }

    #[test]
    fn downloads_and_failures_both_occur() {
        let (w, mut tops) = world_and_tops();
        tops.sort_unstable();
        let r = crawl_tops(&w.corpus, &w.catalog, &w.web, &tops);
        assert!(!r.previews.is_empty(), "previews downloaded");
        assert!(!r.packs.is_empty(), "packs downloaded");
        assert!(r.dead_links > 0, "some links are dead");
        let total_cloud: usize = r.cloud_links_by_site.values().sum();
        let pack_success = r.packs.len() as f64 / total_cloud as f64;
        // Paper: 1 255 packs from 1 686 cloud links ≈ 74%.
        assert!(
            (0.45..0.95).contains(&pack_success),
            "pack success {pack_success}"
        );
    }

    #[test]
    fn banners_are_marked() {
        let (w, mut tops) = world_and_tops();
        tops.sort_unstable();
        let r = crawl_tops(&w.corpus, &w.catalog, &w.web, &tops);
        // ToS-removed preview links serve removal banners.
        assert!(
            r.previews.iter().any(|d| d.is_banner),
            "expected at least one removal banner"
        );
    }

    #[test]
    fn crawl_never_downloads_behind_registration() {
        let (w, mut tops) = world_and_tops();
        tops.sort_unstable();
        let r = crawl_tops(&w.corpus, &w.catalog, &w.web, &tops);
        for p in &r.packs {
            let domain = p.link.url.domain();
            let site = w.catalog.lookup(&domain).unwrap();
            assert!(!site.registration_wall, "downloaded from {domain}");
        }
    }

    #[test]
    fn empty_top_set_crawls_nothing() {
        let (w, _) = world_and_tops();
        let r = crawl_tops(&w.corpus, &w.catalog, &w.web, &[]);
        assert!(r.previews.is_empty());
        assert_eq!(r.total_tops, 0);
    }

    fn sorted_tops() -> (World, Vec<ThreadId>) {
        let (w, mut tops) = world_and_tops();
        tops.sort_unstable();
        (w, tops)
    }

    #[test]
    fn faults_disabled_matches_plain_crawl_byte_for_byte() {
        let (w, tops) = sorted_tops();
        let plain = crawl_tops(&w.corpus, &w.catalog, &w.web, &tops);
        let (faulted, stats) = crawl_tops_with_faults(
            &w.corpus,
            &w.catalog,
            &w.web,
            &tops,
            &FaultPlan::disabled(),
            &RetryPolicy::default(),
        );
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&faulted).unwrap()
        );
        // The resilience layer did no extra work.
        assert_eq!(stats.retries, KindTally::default());
        assert_eq!(stats.wait_us, KindTally::default());
        assert_eq!(stats.breaker_trips, 0);
        assert_eq!(faulted.unreachable_links, 0);
        // One attempt per observed link, no more.
        let links: usize = faulted.image_links_by_site.values().sum::<usize>()
            + faulted.cloud_links_by_site.values().sum::<usize>();
        assert_eq!(stats.attempts.total(), links as u64);
    }

    #[test]
    fn calibrated_faults_retry_and_still_download() {
        let (w, tops) = sorted_tops();
        let plan = FaultPlan::new(0xFA17);
        let policy = RetryPolicy::default();
        let (r, stats) =
            crawl_tops_with_faults(&w.corpus, &w.catalog, &w.web, &tops, &plan, &policy);
        assert!(stats.retries.total() > 0, "no retries at calibrated rates");
        assert!(
            stats.attempts.total() > stats.retries.total(),
            "attempts include first tries"
        );
        assert!(stats.wait_us.total() > 0, "waits were simulated");
        assert!(!r.previews.is_empty(), "faults must not kill the crawl");
        assert!(!r.packs.is_empty());
        let faults =
            stats.timeouts + stats.rate_limited + stats.server_errors + stats.truncated_archives;
        assert!(
            faults >= stats.retries.total(),
            "every retry follows a fault"
        );
    }

    #[test]
    fn same_seed_same_plan_reproduces_result_and_stats() {
        let (w, tops) = sorted_tops();
        let run = || {
            crawl_tops_with_faults(
                &w.corpus,
                &w.catalog,
                &w.web,
                &tops,
                &FaultPlan::new(0xD15EA5E),
                &RetryPolicy::default(),
            )
        };
        let (ra, sa) = run();
        let (rb, sb) = run();
        assert_eq!(
            serde_json::to_string(&ra).unwrap(),
            serde_json::to_string(&rb).unwrap()
        );
        assert_eq!(sa, sb);
    }

    #[test]
    fn total_outage_trips_breakers_and_degrades_gracefully() {
        let (w, tops) = sorted_tops();
        let plan = FaultPlan::with_severity(0xBAD, 1e9);
        let (r, stats) = crawl_tops_with_faults(
            &w.corpus,
            &w.catalog,
            &w.web,
            &tops,
            &plan,
            &RetryPolicy::default(),
        );
        assert!(r.previews.is_empty(), "nothing downloadable in an outage");
        assert!(r.packs.is_empty());
        assert!(stats.breaker_trips > 0, "breakers trip on dead hosts");
        assert!(stats.breaker_skipped > 0, "open breakers skip later links");
        assert!(r.unreachable_links > 0);
        // Defunct hosts still answer permanently (404), so some links die
        // the old way even in a total outage.
        assert!(r.dead_links > 0);
        // Link tallies are unaffected: Tables 3/4 count observed links.
        assert!(r.image_links_by_site.values().sum::<usize>() > 0);
    }

    #[test]
    fn per_host_budget_bounds_traffic() {
        let (w, tops) = sorted_tops();
        let policy = RetryPolicy {
            per_host_budget: 5,
            ..RetryPolicy::default()
        };
        let (r, stats) = crawl_tops_with_faults(
            &w.corpus,
            &w.catalog,
            &w.web,
            &tops,
            &FaultPlan::disabled(),
            &policy,
        );
        assert!(stats.budget_exhausted > 0, "tiny budgets run out");
        assert_eq!(
            stats.budget_exhausted, r.unreachable_links,
            "with faults disabled every unreachable link is budget-bound"
        );
        let hosts = r.image_links_by_site.len() + r.cloud_links_by_site.len();
        assert!(
            stats.attempts.total() <= 5 * hosts as u64,
            "attempts bounded by per-host budget"
        );
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy::default();
        let plan = FaultPlan::new(1);
        let url = Url::new("imgur.com", "/x");
        let floor = |retry| {
            policy
                .base_backoff_us
                .saturating_mul(1u64 << (retry - 1))
                .min(policy.max_backoff_us)
        };
        for retry in 1..=12u32 {
            let b = policy.backoff_us(&plan, &url, retry);
            assert!(b >= floor(retry).min(policy.max_backoff_us));
            assert!(b <= policy.max_backoff_us);
            assert_eq!(b, policy.backoff_us(&plan, &url, retry), "deterministic");
        }
        assert!(
            policy.backoff_us(&plan, &url, 6) >= policy.backoff_us(&plan, &url, 1),
            "later retries wait at least as long as the first"
        );
    }
}
