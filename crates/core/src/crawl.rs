//! Stage 3: URL extraction, whitelist snowball, and crawling (paper §4.2).
//!
//! "Using regular expressions we extract URLs from the content of each
//! extracted TOP. Using a whitelist of known image sharing sites … and
//! cloud storage services … This whitelist is compiled using a snowball
//! sampling technique."
//!
//! The crawler is *ethical by construction*: registration-walled content
//! (Dropbox, Google Drive) is skipped, and nothing is ever posted or paid
//! to unlock reply-gated packs.

use crimebb::{Corpus, PostId, ThreadId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use synthrand::Day;
use textkit::url::{extract_urls, Url};
use websim::{FetchOutcome, SiteCatalog, SiteKind, StoredImage, WebStore};

/// One link found in a TOP, classified by host kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FoundLink {
    /// The URL as posted.
    pub url: Url,
    /// What kind of site hosts it.
    pub kind: SiteKind,
    /// Thread the link was posted in.
    pub thread: ThreadId,
    /// Post carrying the link.
    pub post: PostId,
    /// Post date (needed for the §4.5 seen-before comparison).
    pub posted: Day,
}

/// A successfully downloaded single image.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Download {
    /// The hosted image (spec + baked-in transform).
    pub image: StoredImage,
    /// Source link metadata.
    pub link: FoundLink,
    /// True when the host served a removal banner instead of the content.
    pub is_banner: bool,
}

/// A successfully downloaded pack archive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackDownload {
    /// Archive contents.
    pub images: Vec<StoredImage>,
    /// Source link metadata.
    pub link: FoundLink,
}

/// Everything stage 3 produces.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CrawlResult {
    /// The snowballed whitelist of hosting domains.
    pub whitelist: Vec<String>,
    /// Links per image-sharing domain (Table 3).
    pub image_links_by_site: BTreeMap<String, usize>,
    /// Links per cloud-storage domain (Table 4).
    pub cloud_links_by_site: BTreeMap<String, usize>,
    /// TOPs that contained at least one whitelisted link (paper: 774 of
    /// 4 137, 18.71%).
    pub linked_tops: usize,
    /// TOPs examined.
    pub total_tops: usize,
    /// Downloaded single images (previews and banners).
    pub previews: Vec<Download>,
    /// Downloaded packs.
    pub packs: Vec<PackDownload>,
    /// Links that failed (rotted, defunct host).
    pub dead_links: usize,
    /// Links skipped behind registration walls.
    pub registration_blocked: usize,
}

/// Builds the hosting whitelist by snowball sampling: start from the seed
/// list; for every unknown domain found in the TOPs, "visit the landing
/// site" (a catalogue lookup) and add it when it turns out to host images
/// or files; repeat until no new domains appear.
pub fn snowball_whitelist(
    corpus: &Corpus,
    catalog: &SiteCatalog,
    tops: &[ThreadId],
) -> Vec<String> {
    let mut whitelist: HashSet<String> = catalog
        .seed_whitelist()
        .into_iter()
        .map(String::from)
        .collect();
    let mut inspected: HashSet<String> = whitelist.clone();
    loop {
        let mut grew = false;
        for &t in tops {
            for &p in corpus.posts_in_thread(t) {
                for url in extract_urls(&corpus.post(p).body) {
                    let domain = url.domain();
                    if inspected.contains(&domain) {
                        continue;
                    }
                    inspected.insert(domain.clone());
                    // "Visiting their landing sites": the catalogue lookup
                    // answers whether this is a hosting service.
                    if catalog.lookup(&domain).is_some() {
                        whitelist.insert(domain);
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    let mut out: Vec<String> = whitelist.into_iter().collect();
    out.sort_unstable();
    out
}

/// Extracts whitelisted links from the detected TOPs.
pub fn extract_links(
    corpus: &Corpus,
    catalog: &SiteCatalog,
    whitelist: &[String],
    tops: &[ThreadId],
) -> (Vec<FoundLink>, usize) {
    let whiteset: HashSet<&str> = whitelist.iter().map(String::as_str).collect();
    let mut links = Vec::new();
    let mut linked_tops = 0;
    for &t in tops {
        let mut any = false;
        for &p in corpus.posts_in_thread(t) {
            let post = corpus.post(p);
            for url in extract_urls(&post.body) {
                let domain = url.domain();
                if !whiteset.contains(domain.as_str()) {
                    continue;
                }
                let kind = catalog
                    .lookup(&domain)
                    .map(|s| s.kind)
                    .expect("whitelisted domains are in the catalogue");
                any = true;
                links.push(FoundLink {
                    url,
                    kind,
                    thread: t,
                    post: p,
                    posted: post.date,
                });
            }
        }
        if any {
            linked_tops += 1;
        }
    }
    (links, linked_tops)
}

/// Fetches every link, producing downloads and mortality statistics.
pub fn crawl_links(catalog: &SiteCatalog, web: &WebStore, links: Vec<FoundLink>) -> CrawlResult {
    let mut result = CrawlResult::default();
    for link in links {
        // Tally under the catalogue's canonical name so subdomain-hosted
        // services (drive.google.com) group correctly.
        let domain = catalog
            .lookup(&link.url.domain())
            .map_or_else(|| link.url.domain(), |s| s.domain.to_string());
        match link.kind {
            SiteKind::ImageSharing => {
                *result.image_links_by_site.entry(domain).or_insert(0) += 1;
            }
            SiteKind::CloudStorage => {
                *result.cloud_links_by_site.entry(domain).or_insert(0) += 1;
            }
        }
        match web.fetch(catalog, &link.url) {
            FetchOutcome::Image(image) => result.previews.push(Download {
                image,
                link,
                is_banner: false,
            }),
            FetchOutcome::RemovalBanner(image) => result.previews.push(Download {
                image,
                link,
                is_banner: true,
            }),
            FetchOutcome::Pack(images) => result.packs.push(PackDownload { images, link }),
            FetchOutcome::NotFound => result.dead_links += 1,
            FetchOutcome::RegistrationRequired => result.registration_blocked += 1,
        }
    }
    result
}

/// Runs the full stage: snowball → extract → crawl.
pub fn crawl_tops(
    corpus: &Corpus,
    catalog: &SiteCatalog,
    web: &WebStore,
    tops: &[ThreadId],
) -> CrawlResult {
    let whitelist = snowball_whitelist(corpus, catalog, tops);
    let (links, linked_tops) = extract_links(corpus, catalog, &whitelist, tops);
    let mut result = crawl_links(catalog, web, links);
    result.whitelist = whitelist;
    result.linked_tops = linked_tops;
    result.total_tops = tops.len();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::{World, WorldConfig};

    fn world_and_tops() -> (World, Vec<ThreadId>) {
        let w = World::generate(WorldConfig::test_scale(0xC4A));
        // Crawl ground-truth TOPs directly (classifier is tested separately).
        let tops: Vec<ThreadId> = w
            .truth
            .thread_roles
            .iter()
            .filter(|&(_, &r)| r == worldgen::ThreadRole::Top)
            .map(|(&t, _)| t)
            .collect();
        (w, tops)
    }

    #[test]
    fn snowball_recovers_non_seed_hosts() {
        let (w, mut tops) = world_and_tops();
        tops.sort_unstable();
        let whitelist = snowball_whitelist(&w.corpus, &w.catalog, &tops);
        let seed = w.catalog.seed_whitelist();
        assert!(whitelist.len() >= seed.len());
        // At least one non-seed host appears in generated links over a
        // whole world (imagetwist etc. carry ~8% of preview traffic).
        let grew = whitelist.iter().any(|d| !seed.contains(&d.as_str()));
        assert!(grew, "snowball never grew beyond the seed list");
    }

    #[test]
    fn linked_top_share_matches_paper() {
        let (w, mut tops) = world_and_tops();
        tops.sort_unstable();
        let result = crawl_tops(&w.corpus, &w.catalog, &w.web, &tops);
        let share = result.linked_tops as f64 / result.total_tops as f64;
        // Paper: 18.71% of TOPs yielded links.
        assert!((0.08..0.35).contains(&share), "linked share {share}");
    }

    #[test]
    fn imgur_and_mediafire_dominate_tallies() {
        let (w, mut tops) = world_and_tops();
        tops.sort_unstable();
        let r = crawl_tops(&w.corpus, &w.catalog, &w.web, &tops);
        let top_image = r
            .image_links_by_site
            .iter()
            .max_by_key(|&(_, &c)| c)
            .map(|(d, _)| d.clone());
        let top_cloud = r
            .cloud_links_by_site
            .iter()
            .max_by_key(|&(_, &c)| c)
            .map(|(d, _)| d.clone());
        assert_eq!(top_image.as_deref(), Some("imgur.com"));
        assert_eq!(top_cloud.as_deref(), Some("mediafire.com"));
    }

    #[test]
    fn downloads_and_failures_both_occur() {
        let (w, mut tops) = world_and_tops();
        tops.sort_unstable();
        let r = crawl_tops(&w.corpus, &w.catalog, &w.web, &tops);
        assert!(!r.previews.is_empty(), "previews downloaded");
        assert!(!r.packs.is_empty(), "packs downloaded");
        assert!(r.dead_links > 0, "some links are dead");
        let total_cloud: usize = r.cloud_links_by_site.values().sum();
        let pack_success = r.packs.len() as f64 / total_cloud as f64;
        // Paper: 1 255 packs from 1 686 cloud links ≈ 74%.
        assert!(
            (0.45..0.95).contains(&pack_success),
            "pack success {pack_success}"
        );
    }

    #[test]
    fn banners_are_marked() {
        let (w, mut tops) = world_and_tops();
        tops.sort_unstable();
        let r = crawl_tops(&w.corpus, &w.catalog, &w.web, &tops);
        // ToS-removed preview links serve removal banners.
        assert!(
            r.previews.iter().any(|d| d.is_banner),
            "expected at least one removal banner"
        );
    }

    #[test]
    fn crawl_never_downloads_behind_registration() {
        let (w, mut tops) = world_and_tops();
        tops.sort_unstable();
        let r = crawl_tops(&w.corpus, &w.catalog, &w.web, &tops);
        for p in &r.packs {
            let domain = p.link.url.domain();
            let site = w.catalog.lookup(&domain).unwrap();
            assert!(!site.registration_wall, "downloaded from {domain}");
        }
    }

    #[test]
    fn empty_top_set_crawls_nothing() {
        let (w, _) = world_and_tops();
        let r = crawl_tops(&w.corpus, &w.catalog, &w.web, &[]);
        assert!(r.previews.is_empty());
        assert_eq!(r.total_tops, 0);
    }
}
