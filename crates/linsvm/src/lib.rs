//! Sparse linear classification for the TOP classifier (paper §4.1).
//!
//! The paper trains a **Linear-SVM** over mixed statistical + TF-IDF
//! features, chosen "since it offered the best results in previous
//! experimentation with our dataset \[8\]", and evaluates with precision,
//! recall, and F1 on a 800/200 split of 1 000 annotated threads.
//!
//! This crate provides:
//!
//! * [`SparseVec`] — sorted sparse feature vectors with dense-weight dot
//!   products (the natural layout for TF-IDF rows);
//! * [`LinearSvm`] — a primal hinge-loss SVM trained with the Pegasos
//!   stochastic sub-gradient method (Shalev-Shwartz et al.), L2-regularised,
//!   with an unregularised bias term;
//! * [`LogisticRegression`] and [`NaiveBayes`] — baselines for the
//!   model-choice ablation the paper alludes to;
//! * [`metrics`] — precision/recall/F1/accuracy plus confusion counts;
//! * [`split`] — seeded train/test and k-fold splitting.
//!
//! No external ML dependency exists in the approved crate set, and the
//! paper's model is small (hundreds of training rows, thousands of
//! features), so a from-scratch implementation is both required and
//! appropriate.

pub mod logreg;
pub mod metrics;
pub mod nbayes;
pub mod sparse;
pub mod split;
pub mod svm;

pub use logreg::{LogRegConfig, LogisticRegression};
pub use metrics::{confusion, BinaryMetrics, Confusion};
pub use nbayes::{NaiveBayes, NaiveBayesConfig};
pub use sparse::SparseVec;
pub use split::{kfold, train_test_split};
pub use svm::{LinearSvm, SvmConfig};
