//! Primal linear SVM trained with Pegasos (stochastic sub-gradient).
//!
//! Minimises `λ/2 ‖w‖² + (1/n) Σ max(0, 1 − y (w·x + b))` with the Pegasos
//! learning-rate schedule `η_t = 1/(λ t)`. The bias `b` is updated with the
//! hinge sub-gradient but not regularised (standard practice). Labels are
//! `bool` at the API surface and ±1 internally.

use crate::metrics::BinaryMetrics;
use crate::sparse::SparseVec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters for [`LinearSvm`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SvmConfig {
    /// L2 regularisation strength λ.
    pub lambda: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Shuffle seed (training visits examples in a seeded random order).
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 1e-4,
            epochs: 30,
            seed: 0x5EED,
        }
    }
}

/// A trained linear SVM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    config: SvmConfig,
}

impl LinearSvm {
    /// Trains on sparse rows and boolean labels.
    ///
    /// Panics if `rows` and `labels` differ in length, or if `rows` is
    /// empty — silently returning a degenerate model would corrupt every
    /// downstream measurement.
    pub fn train(rows: &[SparseVec], labels: &[bool], config: SvmConfig) -> LinearSvm {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        assert!(!rows.is_empty(), "cannot train on an empty set");
        assert!(config.lambda > 0.0, "lambda must be positive");

        let dim = rows.iter().map(SparseVec::dim_hint).max().unwrap_or(0);
        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        let mut order: Vec<usize> = (0..rows.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut t: u64 = 1;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let eta = 1.0 / (config.lambda * t as f64);
                let y = if labels[i] { 1.0 } else { -1.0 };
                let margin = y * (rows[i].dot(&weights) + bias);
                // Regularisation shrink applied every step.
                let shrink = 1.0 - eta * config.lambda;
                for w in &mut weights {
                    *w *= shrink;
                }
                if margin < 1.0 {
                    rows[i].add_scaled_into(&mut weights, eta * y);
                    bias += eta * y * 0.1; // damped bias update for stability
                }
                t += 1;
            }
        }
        LinearSvm {
            weights,
            bias,
            config,
        }
    }

    /// The raw decision value `w·x + b`.
    pub fn decision(&self, x: &SparseVec) -> f64 {
        x.dot(&self.weights) + self.bias
    }

    /// Predicted label (`decision > 0`).
    pub fn predict(&self, x: &SparseVec) -> bool {
        self.decision(x) > 0.0
    }

    /// Predicts a batch.
    pub fn predict_all(&self, rows: &[SparseVec]) -> Vec<bool> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Evaluates precision/recall/F1/accuracy against true labels.
    pub fn evaluate(&self, rows: &[SparseVec], labels: &[bool]) -> BinaryMetrics {
        crate::metrics::confusion(&self.predict_all(rows), labels).metrics()
    }

    /// Learned weight for feature `i` (0 beyond the trained dimension).
    pub fn weight(&self, i: usize) -> f64 {
        self.weights.get(i).copied().unwrap_or(0.0)
    }

    /// Learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Trained feature-space dimensionality.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// The configuration used for training.
    pub fn config(&self) -> SvmConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Linearly separable toy set: positive iff feature 0 > feature 1.
    fn toy_set(n: usize, seed: u64) -> (Vec<SparseVec>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(0.0..1.0);
            let b: f64 = rng.gen_range(0.0..1.0);
            rows.push(SparseVec::from_pairs(vec![(0, a), (1, b)]));
            labels.push(a > b);
        }
        (rows, labels)
    }

    #[test]
    fn learns_separable_data() {
        let (rows, labels) = toy_set(400, 1);
        let svm = LinearSvm::train(&rows, &labels, SvmConfig::default());
        let m = svm.evaluate(&rows, &labels);
        assert!(m.accuracy > 0.95, "train accuracy {}", m.accuracy);
        // The separating direction must weight feature 0 positive, 1 negative.
        assert!(svm.weight(0) > 0.0 && svm.weight(1) < 0.0);
    }

    #[test]
    fn generalises_to_held_out() {
        let (train_x, train_y) = toy_set(500, 2);
        let (test_x, test_y) = toy_set(200, 3);
        let svm = LinearSvm::train(&train_x, &train_y, SvmConfig::default());
        let m = svm.evaluate(&test_x, &test_y);
        assert!(m.f1 > 0.9, "test F1 {}", m.f1);
    }

    #[test]
    fn training_is_deterministic() {
        let (rows, labels) = toy_set(100, 4);
        let a = LinearSvm::train(&rows, &labels, SvmConfig::default());
        let b = LinearSvm::train(&rows, &labels, SvmConfig::default());
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    fn different_seed_changes_model_but_not_quality() {
        let (rows, labels) = toy_set(400, 5);
        let c1 = SvmConfig {
            seed: 1,
            ..Default::default()
        };
        let c2 = SvmConfig {
            seed: 2,
            ..Default::default()
        };
        let a = LinearSvm::train(&rows, &labels, c1);
        let b = LinearSvm::train(&rows, &labels, c2);
        assert_ne!(a.weights, b.weights);
        assert!(a.evaluate(&rows, &labels).accuracy > 0.9);
        assert!(b.evaluate(&rows, &labels).accuracy > 0.9);
    }

    #[test]
    fn handles_unseen_feature_indices_at_predict_time() {
        let (rows, labels) = toy_set(100, 6);
        let svm = LinearSvm::train(&rows, &labels, SvmConfig::default());
        let wide = SparseVec::from_pairs(vec![(0, 0.9), (1, 0.1), (999, 5.0)]);
        assert!(svm.predict(&wide)); // extra index ignored, not a panic
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_training_set() {
        let _ = LinearSvm::train(&[], &[], SvmConfig::default());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_mismatched_lengths() {
        let rows = vec![SparseVec::empty()];
        let _ = LinearSvm::train(&rows, &[true, false], SvmConfig::default());
    }

    #[test]
    fn all_one_class_predicts_that_class() {
        let rows: Vec<SparseVec> = (0..20)
            .map(|i| SparseVec::from_pairs(vec![(0, 1.0 + i as f64 * 0.01)]))
            .collect();
        let labels = vec![true; 20];
        let svm = LinearSvm::train(&rows, &labels, SvmConfig::default());
        assert!(svm.predict(&rows[0]));
    }
}
