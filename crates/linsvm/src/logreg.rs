//! Logistic-regression baseline.
//!
//! The paper selected Linear-SVM over alternatives evaluated in prior work
//! (Caines et al. \[8\]). This baseline exists so the model-choice ablation in
//! `bench/ablations` can reproduce that comparison: same sparse features,
//! same API, log-loss instead of hinge.

use crate::metrics::BinaryMetrics;
use crate::sparse::SparseVec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LogRegConfig {
    /// L2 regularisation strength.
    pub lambda: f64,
    /// Initial learning rate (decays as `eta0 / (1 + t·lambda)`).
    pub eta0: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            lambda: 1e-4,
            eta0: 0.5,
            epochs: 30,
            seed: 0x10_6E6,
        }
    }
}

/// A trained logistic-regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Trains with SGD on log-loss. Panics on empty or mismatched input.
    pub fn train(rows: &[SparseVec], labels: &[bool], config: LogRegConfig) -> LogisticRegression {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        assert!(!rows.is_empty(), "cannot train on an empty set");

        let dim = rows.iter().map(SparseVec::dim_hint).max().unwrap_or(0);
        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        let mut order: Vec<usize> = (0..rows.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut t: u64 = 0;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let eta = config.eta0 / (1.0 + t as f64 * config.lambda);
                let y = if labels[i] { 1.0 } else { 0.0 };
                let p = sigmoid(rows[i].dot(&weights) + bias);
                let err = y - p;
                let shrink = 1.0 - eta * config.lambda;
                for w in &mut weights {
                    *w *= shrink;
                }
                rows[i].add_scaled_into(&mut weights, eta * err);
                bias += eta * err;
                t += 1;
            }
        }
        LogisticRegression { weights, bias }
    }

    /// Predicted probability of the positive class.
    pub fn probability(&self, x: &SparseVec) -> f64 {
        sigmoid(x.dot(&self.weights) + self.bias)
    }

    /// Predicted label at the 0.5 threshold.
    pub fn predict(&self, x: &SparseVec) -> bool {
        self.probability(x) > 0.5
    }

    /// Predicts a batch.
    pub fn predict_all(&self, rows: &[SparseVec]) -> Vec<bool> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Evaluates against true labels.
    pub fn evaluate(&self, rows: &[SparseVec], labels: &[bool]) -> BinaryMetrics {
        crate::metrics::confusion(&self.predict_all(rows), labels).metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn toy_set(n: usize, seed: u64) -> (Vec<SparseVec>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(0.0..1.0);
            let b: f64 = rng.gen_range(0.0..1.0);
            rows.push(SparseVec::from_pairs(vec![(0, a), (1, b)]));
            labels.push(a + 0.1 > b);
        }
        (rows, labels)
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0 && sigmoid(1000.0) > 0.999);
        assert!(sigmoid(-1000.0) >= 0.0 && sigmoid(-1000.0) < 1e-3);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn learns_separable_data() {
        let (rows, labels) = toy_set(400, 7);
        let lr = LogisticRegression::train(&rows, &labels, LogRegConfig::default());
        let m = lr.evaluate(&rows, &labels);
        assert!(m.accuracy > 0.9, "accuracy {}", m.accuracy);
    }

    #[test]
    fn probabilities_are_calibrated_directionally() {
        let (rows, labels) = toy_set(400, 8);
        let lr = LogisticRegression::train(&rows, &labels, LogRegConfig::default());
        let clearly_pos = SparseVec::from_pairs(vec![(0, 1.0), (1, 0.0)]);
        let clearly_neg = SparseVec::from_pairs(vec![(0, 0.0), (1, 1.0)]);
        assert!(lr.probability(&clearly_pos) > 0.8);
        assert!(lr.probability(&clearly_neg) < 0.2);
    }

    #[test]
    fn deterministic_training() {
        let (rows, labels) = toy_set(100, 9);
        let a = LogisticRegression::train(&rows, &labels, LogRegConfig::default());
        let b = LogisticRegression::train(&rows, &labels, LogRegConfig::default());
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_input() {
        let _ = LogisticRegression::train(&[], &[], LogRegConfig::default());
    }
}
