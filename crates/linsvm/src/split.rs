//! Seeded dataset splitting.
//!
//! The paper uses an 800/200 train/test split of 1 000 annotated threads
//! (§4.1). [`train_test_split`] reproduces that; [`kfold`] supports the
//! cross-validated threshold sweeps in the ablation benches.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Returns `(train_indices, test_indices)` with `n_train` examples in the
/// training fold, shuffled by `seed`.
///
/// Panics if `n_train > n`.
pub fn train_test_split(n: usize, n_train: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(n_train <= n, "n_train {n_train} exceeds n {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let test = idx.split_off(n_train);
    (idx, test)
}

/// Returns `k` folds of indices for cross-validation; fold sizes differ by
/// at most one. Panics if `k == 0` or `k > n`.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0, "k must be positive");
    assert!(k <= n, "k {k} exceeds n {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        folds.push(idx[start..start + size].to_vec());
        start += size;
    }
    folds
}

/// Gathers rows/labels by index (convenience for building folds).
pub fn gather<T: Clone>(items: &[T], indices: &[usize]) -> Vec<T> {
    indices.iter().map(|&i| items[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_partitions_exactly() {
        let (train, test) = train_test_split(1000, 800, 42);
        assert_eq!(train.len(), 800);
        assert_eq!(test.len(), 200);
        let all: HashSet<usize> = train.iter().chain(&test).copied().collect();
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn split_is_seeded() {
        assert_eq!(train_test_split(100, 80, 1), train_test_split(100, 80, 1));
        assert_ne!(
            train_test_split(100, 80, 1).0,
            train_test_split(100, 80, 2).0
        );
    }

    #[test]
    fn kfold_covers_all_indices_once() {
        let folds = kfold(103, 5, 7);
        assert_eq!(folds.len(), 5);
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().all(|&s| s == 20 || s == 21));
        let all: HashSet<usize> = folds.iter().flatten().copied().collect();
        assert_eq!(all.len(), 103);
    }

    #[test]
    fn gather_selects_in_order() {
        let items = vec!["a", "b", "c", "d"];
        assert_eq!(gather(&items, &[3, 0]), vec!["d", "a"]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn split_rejects_oversized_train() {
        let _ = train_test_split(10, 11, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn kfold_rejects_k_larger_than_n() {
        let _ = kfold(3, 4, 0);
    }
}
