//! Sorted sparse feature vectors.

use serde::{Deserialize, Serialize};

/// A sparse vector of `(index, value)` pairs, sorted by index with no
/// duplicates. The invariant is enforced at construction.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    entries: Vec<(usize, f64)>,
}

impl SparseVec {
    /// Builds from possibly-unsorted pairs; duplicate indices are summed and
    /// exact zeros dropped.
    pub fn from_pairs(mut pairs: Vec<(usize, f64)>) -> SparseVec {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut entries: Vec<(usize, f64)> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            match entries.last_mut() {
                Some(last) if last.0 == i => last.1 += v,
                _ => entries.push((i, v)),
            }
        }
        entries.retain(|&(_, v)| v != 0.0);
        SparseVec { entries }
    }

    /// Builds from pairs already sorted by strictly increasing index.
    ///
    /// Panics in debug builds if the precondition is violated.
    pub fn from_sorted(entries: Vec<(usize, f64)>) -> SparseVec {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        SparseVec { entries }
    }

    /// The empty vector.
    pub fn empty() -> SparseVec {
        SparseVec::default()
    }

    /// Entries as a sorted slice.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Largest index plus one, or 0 if empty.
    pub fn dim_hint(&self) -> usize {
        self.entries.last().map_or(0, |&(i, _)| i + 1)
    }

    /// Dot product with a dense weight slice. Indices beyond the slice
    /// contribute zero (lets callers grow feature spaces safely).
    pub fn dot(&self, dense: &[f64]) -> f64 {
        self.entries
            .iter()
            .filter(|&&(i, _)| i < dense.len())
            .map(|&(i, v)| v * dense[i])
            .sum()
    }

    /// `dense[i] += scale * self[i]` for every entry (in-bounds only).
    pub fn add_scaled_into(&self, dense: &mut [f64], scale: f64) {
        for &(i, v) in &self.entries {
            if i < dense.len() {
                dense[i] += scale * v;
            }
        }
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v * v).sum()
    }

    /// Value at `index` (zero when absent).
    pub fn get(&self, index: usize) -> f64 {
        match self.entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Concatenates two sparse blocks: `self` stays at its indices, `other`
    /// is shifted by `offset`. Used to join statistical features with the
    /// TF-IDF block (paper §4.1 combines both).
    pub fn concat(&self, other: &SparseVec, offset: usize) -> SparseVec {
        let mut entries = self.entries.clone();
        debug_assert!(self.dim_hint() <= offset, "blocks must not overlap");
        entries.extend(other.entries.iter().map(|&(i, v)| (i + offset, v)));
        SparseVec { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_merges_and_drops_zeros() {
        let v = SparseVec::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 2.0), (5, 0.0)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 3.0)]);
    }

    #[test]
    fn dot_ignores_out_of_range() {
        let v = SparseVec::from_pairs(vec![(0, 2.0), (10, 5.0)]);
        let w = [3.0, 1.0];
        assert_eq!(v.dot(&w), 6.0);
    }

    #[test]
    fn add_scaled_into_accumulates() {
        let v = SparseVec::from_pairs(vec![(0, 1.0), (2, 2.0)]);
        let mut w = [0.0; 3];
        v.add_scaled_into(&mut w, 2.0);
        v.add_scaled_into(&mut w, -1.0);
        assert_eq!(w, [1.0, 0.0, 2.0]);
    }

    #[test]
    fn get_and_norms() {
        let v = SparseVec::from_pairs(vec![(1, 3.0), (4, 4.0)]);
        assert_eq!(v.get(1), 3.0);
        assert_eq!(v.get(2), 0.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.dim_hint(), 5);
    }

    #[test]
    fn concat_shifts_second_block() {
        let a = SparseVec::from_pairs(vec![(0, 1.0), (2, 1.0)]);
        let b = SparseVec::from_pairs(vec![(0, 5.0)]);
        let c = a.concat(&b, 10);
        assert_eq!(c.entries(), &[(0, 1.0), (2, 1.0), (10, 5.0)]);
    }

    #[test]
    fn empty_vector_behaves() {
        let v = SparseVec::empty();
        assert_eq!(v.dot(&[1.0, 2.0]), 0.0);
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.dim_hint(), 0);
    }
}
