//! Multinomial Naive Bayes baseline.
//!
//! The classic bag-of-words text classifier, included alongside the SVM
//! and logistic regression so the model-choice ablation covers the three
//! families prior work on underground-forum text (Caines et al.)
//! evaluated. Operates on the same sparse count/TF-IDF rows; negative
//! feature values (impossible for raw counts, possible after feature
//! scaling) are clamped at zero.

use crate::metrics::BinaryMetrics;
use crate::sparse::SparseVec;
use serde::{Deserialize, Serialize};

/// Smoothing and dimensioning parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NaiveBayesConfig {
    /// Laplace/Lidstone smoothing constant α.
    pub alpha: f64,
}

impl Default for NaiveBayesConfig {
    fn default() -> Self {
        NaiveBayesConfig { alpha: 1.0 }
    }
}

/// A trained multinomial Naive Bayes model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveBayes {
    /// log P(class = positive).
    log_prior_pos: f64,
    /// log P(class = negative).
    log_prior_neg: f64,
    /// Per-feature log likelihood for the positive class.
    log_like_pos: Vec<f64>,
    /// Per-feature log likelihood for the negative class.
    log_like_neg: Vec<f64>,
}

impl NaiveBayes {
    /// Trains on sparse rows and boolean labels.
    ///
    /// Panics on empty or mismatched input, or when one class is absent —
    /// a prior of zero makes every prediction degenerate.
    pub fn train(rows: &[SparseVec], labels: &[bool], config: NaiveBayesConfig) -> NaiveBayes {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        assert!(!rows.is_empty(), "cannot train on an empty set");
        assert!(config.alpha > 0.0, "alpha must be positive");
        let n_pos = labels.iter().filter(|&&l| l).count();
        let n_neg = labels.len() - n_pos;
        assert!(n_pos > 0 && n_neg > 0, "both classes must be present");

        let dim = rows.iter().map(SparseVec::dim_hint).max().unwrap_or(0);
        let mut count_pos = vec![0.0f64; dim];
        let mut count_neg = vec![0.0f64; dim];
        for (row, &label) in rows.iter().zip(labels) {
            let target = if label {
                &mut count_pos
            } else {
                &mut count_neg
            };
            for &(i, v) in row.entries() {
                target[i] += v.max(0.0);
            }
        }
        let total_pos: f64 = count_pos.iter().sum::<f64>() + config.alpha * dim as f64;
        let total_neg: f64 = count_neg.iter().sum::<f64>() + config.alpha * dim as f64;
        let log_like_pos = count_pos
            .iter()
            .map(|&c| ((c + config.alpha) / total_pos).ln())
            .collect();
        let log_like_neg = count_neg
            .iter()
            .map(|&c| ((c + config.alpha) / total_neg).ln())
            .collect();

        NaiveBayes {
            log_prior_pos: (n_pos as f64 / labels.len() as f64).ln(),
            log_prior_neg: (n_neg as f64 / labels.len() as f64).ln(),
            log_like_pos,
            log_like_neg,
        }
    }

    /// Log-odds of the positive class.
    pub fn log_odds(&self, x: &SparseVec) -> f64 {
        let mut pos = self.log_prior_pos;
        let mut neg = self.log_prior_neg;
        for &(i, v) in x.entries() {
            let v = v.max(0.0);
            if i < self.log_like_pos.len() {
                pos += v * self.log_like_pos[i];
                neg += v * self.log_like_neg[i];
            }
        }
        pos - neg
    }

    /// Predicted label.
    pub fn predict(&self, x: &SparseVec) -> bool {
        self.log_odds(x) > 0.0
    }

    /// Predicts a batch.
    pub fn predict_all(&self, rows: &[SparseVec]) -> Vec<bool> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Evaluates against true labels.
    pub fn evaluate(&self, rows: &[SparseVec], labels: &[bool]) -> BinaryMetrics {
        crate::metrics::confusion(&self.predict_all(rows), labels).metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two "topics": positive documents draw words from 0..10, negative
    /// from 10..20, with overlap noise.
    fn topic_set(n: usize, seed: u64) -> (Vec<SparseVec>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let pos = rng.gen_bool(0.4);
            let base = if pos { 0 } else { 10 };
            let mut pairs = Vec::new();
            for _ in 0..rng.gen_range(3..10) {
                let word = if rng.gen_bool(0.85) {
                    base + rng.gen_range(0..10)
                } else {
                    rng.gen_range(0..20)
                };
                pairs.push((word, 1.0));
            }
            rows.push(SparseVec::from_pairs(pairs));
            labels.push(pos);
        }
        (rows, labels)
    }

    #[test]
    fn learns_topic_separation() {
        let (rows, labels) = topic_set(600, 1);
        let nb = NaiveBayes::train(&rows, &labels, NaiveBayesConfig::default());
        let m = nb.evaluate(&rows, &labels);
        assert!(m.f1 > 0.9, "train F1 {}", m.f1);
        let (test_x, test_y) = topic_set(300, 2);
        let mt = nb.evaluate(&test_x, &test_y);
        assert!(mt.f1 > 0.85, "test F1 {}", mt.f1);
    }

    #[test]
    fn respects_class_prior_on_empty_documents() {
        let (rows, labels) = topic_set(400, 3);
        let nb = NaiveBayes::train(&rows, &labels, NaiveBayesConfig::default());
        // Positives are the 40% minority; an empty document must follow
        // the prior and be classified negative.
        assert!(!nb.predict(&SparseVec::empty()));
    }

    #[test]
    fn smoothing_handles_unseen_features() {
        let (rows, labels) = topic_set(200, 4);
        let nb = NaiveBayes::train(&rows, &labels, NaiveBayesConfig::default());
        let unseen = SparseVec::from_pairs(vec![(5_000, 3.0)]);
        // Out-of-range features are ignored rather than panicking.
        let _ = nb.predict(&unseen);
    }

    #[test]
    fn negative_values_are_clamped() {
        let rows = vec![
            SparseVec::from_pairs(vec![(0, 5.0)]),
            SparseVec::from_pairs(vec![(1, -5.0), (0, 1.0)]),
        ];
        let labels = vec![true, false];
        let nb = NaiveBayes::train(&rows, &labels, NaiveBayesConfig::default());
        let _ = nb.log_odds(&SparseVec::from_pairs(vec![(1, -2.0)]));
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn rejects_single_class() {
        let rows = vec![SparseVec::from_pairs(vec![(0, 1.0)])];
        let _ = NaiveBayes::train(&rows, &[true], NaiveBayesConfig::default());
    }

    #[test]
    fn deterministic_and_comparable_with_svm() {
        let (rows, labels) = topic_set(500, 5);
        let a = NaiveBayes::train(&rows, &labels, NaiveBayesConfig::default());
        let b = NaiveBayes::train(&rows, &labels, NaiveBayesConfig::default());
        assert_eq!(a.log_like_pos, b.log_like_pos);
        // Sanity: NB and SVM broadly agree on this easy problem.
        let svm = crate::LinearSvm::train(&rows, &labels, crate::SvmConfig::default());
        let agree = rows
            .iter()
            .filter(|r| a.predict(r) == svm.predict(r))
            .count();
        assert!(agree as f64 / rows.len() as f64 > 0.85);
    }
}
