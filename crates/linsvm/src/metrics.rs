//! Binary classification metrics — "standard metrics for information
//! retrieval, i.e., precision, recall, and F1 score" (paper §4.1).

use serde::{Deserialize, Serialize};

/// Confusion counts for a binary task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Predicted positive, actually positive.
    pub tp: usize,
    /// Predicted positive, actually negative.
    pub fp: usize,
    /// Predicted negative, actually positive.
    pub fn_: usize,
    /// Predicted negative, actually negative.
    pub tn: usize,
}

impl Confusion {
    /// Derives precision/recall/F1/accuracy. Empty denominators yield 0.0
    /// (conventional for degenerate splits).
    pub fn metrics(&self) -> BinaryMetrics {
        let p_den = (self.tp + self.fp) as f64;
        let r_den = (self.tp + self.fn_) as f64;
        let precision = if p_den > 0.0 {
            self.tp as f64 / p_den
        } else {
            0.0
        };
        let recall = if r_den > 0.0 {
            self.tp as f64 / r_den
        } else {
            0.0
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        let total = (self.tp + self.fp + self.fn_ + self.tn) as f64;
        let accuracy = if total > 0.0 {
            (self.tp + self.tn) as f64 / total
        } else {
            0.0
        };
        BinaryMetrics {
            precision,
            recall,
            f1,
            accuracy,
        }
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }
}

/// Precision / recall / F1 / accuracy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    /// TP / (TP + FP).
    pub precision: f64,
    /// TP / (TP + FN).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// (TP + TN) / total.
    pub accuracy: f64,
}

/// Builds a confusion matrix from parallel prediction/label slices.
///
/// Panics on length mismatch.
pub fn confusion(predicted: &[bool], actual: &[bool]) -> Confusion {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let mut c = Confusion::default();
    for (&p, &a) in predicted.iter().zip(actual) {
        match (p, a) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, true) => c.fn_ += 1,
            (false, false) => c.tn += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let c = confusion(&[true, false, true], &[true, false, true]);
        let m = c.metrics();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn known_confusion_values() {
        // 8 TP, 2 FP, 1 FN, 9 TN.
        let pred: Vec<bool> = [vec![true; 10], vec![false; 10]].concat();
        let actual: Vec<bool> =
            [vec![true; 8], vec![false; 2], vec![true; 1], vec![false; 9]].concat();
        let c = confusion(&pred, &actual);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (8, 2, 1, 9));
        let m = c.metrics();
        assert!((m.precision - 0.8).abs() < 1e-12);
        assert!((m.recall - 8.0 / 9.0).abs() < 1e-12);
        assert!((m.accuracy - 0.85).abs() < 1e-12);
    }

    #[test]
    fn degenerate_all_negative_predictions() {
        let c = confusion(&[false, false], &[true, false]);
        let m = c.metrics();
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn empty_input() {
        let c = confusion(&[], &[]);
        assert_eq!(c.total(), 0);
        assert_eq!(c.metrics().accuracy, 0.0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        // precision 1.0, recall 0.5 -> F1 = 2/3.
        let c = Confusion {
            tp: 1,
            fp: 0,
            fn_: 1,
            tn: 0,
        };
        assert!((c.metrics().f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_slices() {
        let _ = confusion(&[true], &[]);
    }
}
