//! H-index and i-N popularity indices (paper §6.1).
//!
//! "These include a H-index (a metric widely use to measure popularity of
//! scholars, which indicates that an actor has H threads with at least H
//! replies), and the i-10, i-50 and i-100 indices (i.e., the number of
//! threads with at least 10, 50, or 100 replies)."

/// The H-index of a list of per-thread reply counts.
pub fn h_index(reply_counts: &[usize]) -> usize {
    let mut counts: Vec<usize> = reply_counts.to_vec();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    counts
        .iter()
        .enumerate()
        .take_while(|&(i, &c)| c > i)
        .count()
}

/// The i-N index: number of threads with at least `n` replies.
pub fn i_index(reply_counts: &[usize], n: usize) -> usize {
    reply_counts.iter().filter(|&&c| c >= n).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_h_index_examples() {
        assert_eq!(h_index(&[10, 8, 5, 4, 3]), 4);
        assert_eq!(h_index(&[25, 8, 5, 3, 3]), 3);
        assert_eq!(h_index(&[1, 1, 1, 1]), 1);
        assert_eq!(h_index(&[0, 0, 0]), 0);
        assert_eq!(h_index(&[]), 0);
    }

    #[test]
    fn h_index_is_order_invariant() {
        assert_eq!(h_index(&[3, 10, 4, 8, 5]), h_index(&[10, 8, 5, 4, 3]));
    }

    #[test]
    fn h_index_bounded_by_thread_count() {
        assert_eq!(h_index(&[1000, 1000]), 2);
    }

    #[test]
    fn i_index_thresholds() {
        let counts = [120, 55, 55, 12, 9, 0];
        assert_eq!(i_index(&counts, 10), 4);
        assert_eq!(i_index(&counts, 50), 3);
        assert_eq!(i_index(&counts, 100), 1);
        assert_eq!(i_index(&counts, 1), 5);
        assert_eq!(i_index(&[], 10), 0);
    }
}
