//! A directed weighted graph over dense `u32` node ids.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Directed weighted graph. Nodes are `0..n`; parallel edges accumulate
/// weight. Built incrementally (one `add_edge` per observed interaction),
/// then queried.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DiGraph {
    n: usize,
    /// Out-adjacency: for each node, `(target, weight)` sorted by target.
    out: Vec<Vec<(u32, f64)>>,
    /// In-adjacency mirror.
    incoming: Vec<Vec<(u32, f64)>>,
}

impl DiGraph {
    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> DiGraph {
        DiGraph {
            n,
            out: vec![Vec::new(); n],
            incoming: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of distinct directed edges.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Grows the node set to at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
            self.out.resize(n, Vec::new());
            self.incoming.resize(n, Vec::new());
        }
    }

    /// Adds `weight` to the edge `from → to` (creating it if absent).
    /// Panics if either endpoint is out of range; self-loops are allowed
    /// (an actor replying in their own thread) but contribute nothing to
    /// centrality.
    pub fn add_edge(&mut self, from: u32, to: u32, weight: f64) {
        assert!(
            (from as usize) < self.n && (to as usize) < self.n,
            "node out of range"
        );
        assert!(weight >= 0.0 && weight.is_finite(), "bad weight {weight}");
        upsert(&mut self.out[from as usize], to, weight);
        upsert(&mut self.incoming[to as usize], from, weight);
    }

    /// Out-edges of `node` as `(target, weight)`.
    pub fn out_edges(&self, node: u32) -> &[(u32, f64)] {
        &self.out[node as usize]
    }

    /// In-edges of `node` as `(source, weight)`.
    pub fn in_edges(&self, node: u32) -> &[(u32, f64)] {
        &self.incoming[node as usize]
    }

    /// Total weight of edges into `node` (reply volume received).
    pub fn in_strength(&self, node: u32) -> f64 {
        self.incoming[node as usize].iter().map(|&(_, w)| w).sum()
    }

    /// Total weight of edges out of `node` (replies given).
    pub fn out_strength(&self, node: u32) -> f64 {
        self.out[node as usize].iter().map(|&(_, w)| w).sum()
    }

    /// In-degree (distinct repliers).
    pub fn in_degree(&self, node: u32) -> usize {
        self.incoming[node as usize].len()
    }

    /// Out-degree (distinct actors replied to).
    pub fn out_degree(&self, node: u32) -> usize {
        self.out[node as usize].len()
    }

    /// Builds a graph from a list of weighted interactions, sizing the node
    /// set automatically.
    pub fn from_interactions(edges: impl IntoIterator<Item = (u32, u32, f64)>) -> DiGraph {
        let mut acc: HashMap<(u32, u32), f64> = HashMap::new();
        let mut max_node = 0u32;
        for (a, b, w) in edges {
            *acc.entry((a, b)).or_insert(0.0) += w;
            max_node = max_node.max(a).max(b);
        }
        let mut g = DiGraph::with_nodes(if acc.is_empty() {
            0
        } else {
            max_node as usize + 1
        });
        let mut sorted: Vec<((u32, u32), f64)> = acc.into_iter().collect();
        sorted.sort_unstable_by_key(|&((a, b), _)| (a, b));
        for ((a, b), w) in sorted {
            g.add_edge(a, b, w);
        }
        g
    }
}

fn upsert(adj: &mut Vec<(u32, f64)>, key: u32, weight: f64) {
    match adj.binary_search_by_key(&key, |&(k, _)| k) {
        Ok(pos) => adj[pos].1 += weight,
        Err(pos) => adj.insert(pos, (key, weight)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_accumulate_weight() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 2.0);
        g.add_edge(0, 2, 1.0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_edges(0), &[(1, 3.0), (2, 1.0)]);
        assert_eq!(g.in_strength(1), 3.0);
        assert_eq!(g.out_strength(0), 4.0);
    }

    #[test]
    fn in_out_mirror_each_other() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(1, 3, 2.5);
        assert_eq!(g.in_edges(3), &[(1, 2.5)]);
        assert_eq!(g.in_degree(3), 1);
        assert_eq!(g.out_degree(1), 1);
        assert_eq!(g.in_degree(1), 0);
    }

    #[test]
    fn from_interactions_sizes_and_merges() {
        let g = DiGraph::from_interactions(vec![(0, 5, 1.0), (0, 5, 1.0), (2, 0, 1.0)]);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.out_edges(0), &[(5, 2.0)]);
    }

    #[test]
    fn empty_interactions_make_empty_graph() {
        let g = DiGraph::from_interactions(Vec::new());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn ensure_nodes_grows_only() {
        let mut g = DiGraph::with_nodes(2);
        g.ensure_nodes(5);
        assert_eq!(g.node_count(), 5);
        g.ensure_nodes(1);
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn rejects_out_of_range_edge() {
        let mut g = DiGraph::with_nodes(1);
        g.add_edge(0, 1, 1.0);
    }

    #[test]
    fn self_loops_allowed() {
        let mut g = DiGraph::with_nodes(1);
        g.add_edge(0, 0, 1.0);
        assert_eq!(g.in_strength(0), 1.0);
    }
}
