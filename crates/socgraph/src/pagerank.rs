//! PageRank over the interaction graph.
//!
//! An alternative influence measure to eigenvector centrality: the paper
//! uses the latter, and the `ablations` bench compares how much the §6.3
//! "influencing actors" selection changes under PageRank — a robustness
//! check on the key-actor methodology.

use crate::graph::DiGraph;

/// Computes PageRank scores (probability distribution over nodes).
///
/// Standard damped power iteration on edge weights: a random surfer
/// follows out-edges proportionally to weight with probability `damping`,
/// teleports uniformly otherwise; dangling mass is redistributed
/// uniformly. Iterates until the L1 change drops below `1e-10` or
/// `max_iter` rounds. Self-loops are ignored, as in the centrality
/// computation.
pub fn pagerank(g: &DiGraph, damping: f64, max_iter: usize) -> Vec<f64> {
    pagerank_par(g, damping, max_iter, 1)
}

/// [`pagerank`] with the per-iteration gather split across `workers`
/// threads (0 = all cores).
///
/// Each node pulls `damping · rank[u] / out_strength[u] · w` from its
/// in-edges — the expression the serial push sweep computes as
/// `share · w` — in the same ascending-source order ([`DiGraph`] keeps
/// in-edges sorted by source), so the ranks are **bit-identical** to the
/// serial result for any worker count.
pub fn pagerank_par(g: &DiGraph, damping: f64, max_iter: usize, workers: usize) -> Vec<f64> {
    let n = g.node_count();
    let uniform = vec![1.0 / n.max(1) as f64; n];
    pagerank_par_from(g, &uniform, damping, max_iter, workers)
}

/// [`pagerank_par`] warm-started from `start` instead of the uniform
/// distribution — the epoch-pipeline counterpart of
/// [`crate::eigenvector_centrality_from`]: carry the previous epoch's
/// ranks across a graph append and converge on the delta. Deterministic
/// in `(graph, start)` at the same fixed tolerance, so chain replays
/// reproduce every epoch's ranks bit-exactly. Sweep buffers are reused
/// across iterations.
pub fn pagerank_par_from(
    g: &DiGraph,
    start: &[f64],
    damping: f64,
    max_iter: usize,
    workers: usize,
) -> Vec<f64> {
    assert!((0.0..1.0).contains(&damping), "damping in [0, 1)");
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    assert_eq!(start.len(), n, "start vector must cover every node");
    let uniform = 1.0 / n as f64;
    let mut rank = start.to_vec();
    let mut next = vec![0.0; n];

    // Precompute out strengths without self-loops.
    let out_strength: Vec<f64> = (0..n as u32)
        .map(|u| {
            g.out_edges(u)
                .iter()
                .filter(|&&(v, _)| v != u)
                .map(|&(_, w)| w)
                .sum()
        })
        .collect();

    for _ in 0..max_iter {
        let mut dangling = 0.0;
        for (u, &s) in out_strength.iter().enumerate() {
            if s == 0.0 {
                dangling += rank[u];
            }
        }
        let base = (1.0 - damping) * uniform + damping * dangling * uniform;
        parkit::par_fill_range(&mut next, workers, |v| {
            let mut acc = base;
            for &(u, w) in g.in_edges(v as u32) {
                let s = out_strength[u as usize];
                if u as usize != v && s != 0.0 {
                    acc += damping * rank[u as usize] / s * w;
                }
            }
            acc
        });
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < 1e-10 {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize) -> DiGraph {
        let mut g = DiGraph::with_nodes(n);
        for i in 1..n as u32 {
            g.add_edge(i, 0, 1.0);
        }
        g
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = star(12);
        let r = pagerank(&g, 0.85, 100);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn hub_dominates_star() {
        let g = star(12);
        let r = pagerank(&g, 0.85, 100);
        assert!(r.iter().skip(1).all(|&v| v < r[0]));
    }

    #[test]
    fn edgeless_graph_is_uniform() {
        let g = DiGraph::with_nodes(5);
        let r = pagerank(&g, 0.85, 50);
        for v in &r {
            assert!((v - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn weight_shifts_rank() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 3.0);
        let r = pagerank(&g, 0.85, 100);
        assert!(r[2] > r[1]);
    }

    #[test]
    fn agrees_with_eigenvector_on_strong_hubs() {
        // On a star the two influence measures must pick the same top node.
        let g = star(30);
        let pr = pagerank(&g, 0.85, 200);
        let ev = crate::eigenvector_centrality(&g, 200);
        let top_pr = pr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let top_ev = ev
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(top_pr, top_ev);
    }

    /// The bit-identity contract, including dangling nodes (no out-edges).
    #[test]
    fn parallel_gather_is_bit_identical_to_serial() {
        let mut g = DiGraph::with_nodes(300);
        for i in 0..290u32 {
            // Leave nodes 290.. dangling.
            g.add_edge(i, (i * 11 + 2) % 300, 1.0 + f64::from(i % 3));
        }
        let serial = pagerank(&g, 0.85, 200);
        for workers in [2, 3, 7] {
            let par = pagerank_par(&g, 0.85, 200, workers);
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "workers={workers} diverged"
            );
        }
    }

    /// Same warm-start contract as eigenvector centrality: `_from` with
    /// the uniform start is the classic computation, and chains over
    /// growing graphs replay bit-exactly.
    #[test]
    fn warm_start_chain_replays_bit_identically() {
        let mut g1 = DiGraph::with_nodes(150);
        for i in 0..100u32 {
            g1.add_edge(i, (i * 11 + 2) % 150, 1.0);
        }
        let mut g2 = g1.clone();
        for i in 100..150u32 {
            g2.add_edge(i, (i * 3 + 5) % 150, 1.5);
        }
        let uniform = vec![1.0 / 150.0; 150];
        assert_eq!(
            pagerank_par_from(&g1, &uniform, 0.85, 200, 1),
            pagerank_par(&g1, 0.85, 200, 1),
            "uniform start is the classic computation"
        );
        let r1 = pagerank_par_from(&g1, &uniform, 0.85, 200, 1);
        let r2 = pagerank_par_from(&g2, &r1, 0.85, 200, 1);
        for workers in [1, 2, 7] {
            let s1 = pagerank_par_from(&g1, &uniform, 0.85, 200, workers);
            let s2 = pagerank_par_from(&g2, &s1, 0.85, 200, workers);
            assert!(
                r1.iter().zip(&s1).all(|(a, b)| a.to_bits() == b.to_bits()),
                "epoch-1 replay diverged (workers={workers})"
            );
            assert!(
                r2.iter().zip(&s2).all(|(a, b)| a.to_bits() == b.to_bits()),
                "epoch-2 replay diverged (workers={workers})"
            );
        }
    }

    #[test]
    fn empty_graph_returns_empty() {
        assert!(pagerank(&DiGraph::with_nodes(0), 0.85, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let _ = pagerank(&DiGraph::with_nodes(1), 1.0, 10);
    }
}
