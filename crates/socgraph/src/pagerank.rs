//! PageRank over the interaction graph.
//!
//! An alternative influence measure to eigenvector centrality: the paper
//! uses the latter, and the `ablations` bench compares how much the §6.3
//! "influencing actors" selection changes under PageRank — a robustness
//! check on the key-actor methodology.

use crate::graph::DiGraph;

/// Computes PageRank scores (probability distribution over nodes).
///
/// Standard damped power iteration on edge weights: a random surfer
/// follows out-edges proportionally to weight with probability `damping`,
/// teleports uniformly otherwise; dangling mass is redistributed
/// uniformly. Iterates until the L1 change drops below `1e-10` or
/// `max_iter` rounds. Self-loops are ignored, as in the centrality
/// computation.
pub fn pagerank(g: &DiGraph, damping: f64, max_iter: usize) -> Vec<f64> {
    pagerank_par(g, damping, max_iter, 1)
}

/// [`pagerank`] with the per-iteration gather split across `workers`
/// threads (0 = all cores).
///
/// Each node pulls `damping · rank[u] / out_strength[u] · w` from its
/// in-edges — the expression the serial push sweep computes as
/// `share · w` — in the same ascending-source order ([`DiGraph`] keeps
/// in-edges sorted by source), so the ranks are **bit-identical** to the
/// serial result for any worker count.
pub fn pagerank_par(g: &DiGraph, damping: f64, max_iter: usize, workers: usize) -> Vec<f64> {
    assert!((0.0..1.0).contains(&damping), "damping in [0, 1)");
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];

    // Precompute out strengths without self-loops.
    let out_strength: Vec<f64> = (0..n as u32)
        .map(|u| {
            g.out_edges(u)
                .iter()
                .filter(|&&(v, _)| v != u)
                .map(|&(_, w)| w)
                .sum()
        })
        .collect();

    for _ in 0..max_iter {
        let mut dangling = 0.0;
        for (u, &s) in out_strength.iter().enumerate() {
            if s == 0.0 {
                dangling += rank[u];
            }
        }
        let base = (1.0 - damping) * uniform + damping * dangling * uniform;
        let next: Vec<f64> = parkit::par_map_range(n, workers, |v| {
            let mut acc = base;
            for &(u, w) in g.in_edges(v as u32) {
                let s = out_strength[u as usize];
                if u as usize != v && s != 0.0 {
                    acc += damping * rank[u as usize] / s * w;
                }
            }
            acc
        });
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if delta < 1e-10 {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize) -> DiGraph {
        let mut g = DiGraph::with_nodes(n);
        for i in 1..n as u32 {
            g.add_edge(i, 0, 1.0);
        }
        g
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = star(12);
        let r = pagerank(&g, 0.85, 100);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn hub_dominates_star() {
        let g = star(12);
        let r = pagerank(&g, 0.85, 100);
        assert!(r.iter().skip(1).all(|&v| v < r[0]));
    }

    #[test]
    fn edgeless_graph_is_uniform() {
        let g = DiGraph::with_nodes(5);
        let r = pagerank(&g, 0.85, 50);
        for v in &r {
            assert!((v - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn weight_shifts_rank() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 3.0);
        let r = pagerank(&g, 0.85, 100);
        assert!(r[2] > r[1]);
    }

    #[test]
    fn agrees_with_eigenvector_on_strong_hubs() {
        // On a star the two influence measures must pick the same top node.
        let g = star(30);
        let pr = pagerank(&g, 0.85, 200);
        let ev = crate::eigenvector_centrality(&g, 200);
        let top_pr = pr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let top_ev = ev
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(top_pr, top_ev);
    }

    /// The bit-identity contract, including dangling nodes (no out-edges).
    #[test]
    fn parallel_gather_is_bit_identical_to_serial() {
        let mut g = DiGraph::with_nodes(300);
        for i in 0..290u32 {
            // Leave nodes 290.. dangling.
            g.add_edge(i, (i * 11 + 2) % 300, 1.0 + f64::from(i % 3));
        }
        let serial = pagerank(&g, 0.85, 200);
        for workers in [2, 3, 7] {
            let par = pagerank_par(&g, 0.85, 200, workers);
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "workers={workers} diverged"
            );
        }
    }

    #[test]
    fn empty_graph_returns_empty() {
        assert!(pagerank(&DiGraph::with_nodes(0), 0.85, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let _ = pagerank(&DiGraph::with_nodes(1), 1.0, 10);
    }
}
