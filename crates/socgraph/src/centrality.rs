//! Eigenvector centrality by power iteration.
//!
//! The paper uses eigenvector centrality to select the 50 most "influencing"
//! actors (§6.3). Centrality is computed on the *incoming* direction: an
//! actor is influential when influential actors respond to them.

use crate::graph::DiGraph;

/// Computes eigenvector centrality scores (L2-normalised, non-negative).
///
/// Power iteration on `x ← A^T x` (x_i accumulates from nodes pointing at
/// i), with self-loops ignored and a small teleport term `eps` to guarantee
/// convergence on disconnected graphs. Iterates until the L1 change drops
/// below `1e-9` or `max_iter` rounds.
pub fn eigenvector_centrality(g: &DiGraph, max_iter: usize) -> Vec<f64> {
    eigenvector_centrality_par(g, max_iter, 1)
}

/// [`eigenvector_centrality`] with the per-iteration gather split across
/// `workers` threads (0 = all cores).
///
/// Each node pulls `w · x[u]` from its in-edges, which [`DiGraph`] stores
/// sorted by source — the same ascending-source order in which the serial
/// push sweep delivers them — so every accumulator sees an identical
/// addition sequence and the scores are **bit-identical** to the serial
/// result for any worker count.
pub fn eigenvector_centrality_par(g: &DiGraph, max_iter: usize, workers: usize) -> Vec<f64> {
    let n = g.node_count();
    let start = vec![1.0 / (n as f64).sqrt(); n];
    eigenvector_centrality_from(g, &start, max_iter, workers)
}

/// [`eigenvector_centrality_par`] warm-started from `start` instead of
/// the uniform vector — the epoch pipeline carries the previous epoch's
/// converged vector across a graph append, so each advance pays only the
/// iterations the *delta* needs instead of re-converging from scratch.
///
/// The iteration body is the same deterministic map at the same fixed
/// tolerance, so for a given `(graph, start)` the result is bit-identical
/// no matter how the caller obtained `start`; a from-scratch replay of
/// the same warm-start chain reproduces every epoch's vector exactly.
/// Both sweep buffers are reused across iterations (allocation-free
/// steady state via [`parkit::par_fill_range`]).
pub fn eigenvector_centrality_from(
    g: &DiGraph,
    start: &[f64],
    max_iter: usize,
    workers: usize,
) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    assert_eq!(start.len(), n, "start vector must cover every node");
    let eps = 1e-4 / n as f64;
    let mut x = start.to_vec();
    let mut next = vec![0.0; n];
    for _ in 0..max_iter {
        parkit::par_fill_range(&mut next, workers, |v| {
            let mut acc = eps;
            for &(u, w) in g.in_edges(v as u32) {
                if u as usize != v {
                    acc += w * x[u as usize];
                }
            }
            acc
        });
        let norm: f64 = next.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            // No edges at all: uniform centrality.
            return vec![1.0 / (n as f64).sqrt(); n];
        }
        let mut delta = 0.0;
        for (xi, &nv) in x.iter_mut().zip(&next) {
            let v = nv / norm;
            delta += (v - *xi).abs();
            *xi = v;
        }
        if delta < 1e-9 {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star graph: everyone replies to node 0.
    fn star(n: usize) -> DiGraph {
        let mut g = DiGraph::with_nodes(n);
        for i in 1..n as u32 {
            g.add_edge(i, 0, 1.0);
        }
        g
    }

    #[test]
    fn hub_of_star_has_highest_centrality() {
        let g = star(10);
        let c = eigenvector_centrality(&g, 100);
        let hub = c[0];
        assert!(c.iter().skip(1).all(|&v| v < hub), "{c:?}");
    }

    #[test]
    fn scores_are_normalised_and_nonnegative() {
        let g = star(20);
        let c = eigenvector_centrality(&g, 100);
        let norm: f64 = c.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
        assert!(c.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn weight_increases_influence() {
        // Two receivers; node 2 receives double weight from the same source.
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 2.0);
        g.add_edge(3, 0, 1.0); // give source some centrality
        let c = eigenvector_centrality(&g, 200);
        assert!(c[2] > c[1], "{c:?}");
    }

    #[test]
    fn empty_graph_yields_empty() {
        let g = DiGraph::with_nodes(0);
        assert!(eigenvector_centrality(&g, 10).is_empty());
    }

    #[test]
    fn edgeless_graph_is_uniform() {
        let g = DiGraph::with_nodes(4);
        let c = eigenvector_centrality(&g, 10);
        for w in c.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn self_loops_do_not_inflate() {
        let mut a = DiGraph::with_nodes(3);
        a.add_edge(1, 0, 1.0);
        a.add_edge(2, 0, 1.0);
        let mut b = a.clone();
        b.add_edge(0, 0, 100.0);
        let ca = eigenvector_centrality(&a, 200);
        let cb = eigenvector_centrality(&b, 200);
        assert!((ca[0] - cb[0]).abs() < 1e-6, "{ca:?} vs {cb:?}");
    }

    /// The bit-identity contract: parallel gather must reproduce the
    /// serial push sweep exactly, for any worker count, on a graph large
    /// enough to exercise the parallel path.
    #[test]
    fn parallel_gather_is_bit_identical_to_serial() {
        let mut g = DiGraph::with_nodes(300);
        for i in 0..300u32 {
            g.add_edge(i, (i * 7 + 3) % 300, 1.0 + f64::from(i % 5));
            g.add_edge(i, (i * 13 + 1) % 300, 0.5);
        }
        let serial = eigenvector_centrality(&g, 200);
        for workers in [2, 3, 7] {
            let par = eigenvector_centrality_par(&g, 200, workers);
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "workers={workers} diverged"
            );
        }
    }

    /// The warm-start contract the epoch pipeline relies on: a chain of
    /// `_from` calls over growing graphs is a pure function of its
    /// inputs, so replaying the chain from scratch reproduces every
    /// link bit-exactly — and a uniform `_from` start is exactly the
    /// classic computation.
    #[test]
    fn warm_start_chain_replays_bit_identically() {
        let mut g1 = DiGraph::with_nodes(200);
        for i in 0..150u32 {
            g1.add_edge(i, (i * 7 + 3) % 200, 1.0);
        }
        let mut g2 = g1.clone();
        for i in 150..200u32 {
            g2.add_edge(i, (i * 13 + 1) % 200, 2.0);
        }
        let n = g1.node_count();
        let uniform = vec![1.0 / (n as f64).sqrt(); n];
        assert_eq!(
            eigenvector_centrality_from(&g1, &uniform, 200, 1),
            eigenvector_centrality_par(&g1, 200, 1),
            "uniform start is the classic computation"
        );
        let v1 = eigenvector_centrality_from(&g1, &uniform, 200, 1);
        let v2 = eigenvector_centrality_from(&g2, &v1, 200, 1);
        // Replay the whole chain: identical at every link, and at other
        // worker counts.
        for workers in [1, 2, 7] {
            let r1 = eigenvector_centrality_from(&g1, &uniform, 200, workers);
            let r2 = eigenvector_centrality_from(&g2, &r1, 200, workers);
            assert!(
                v1.iter().zip(&r1).all(|(a, b)| a.to_bits() == b.to_bits()),
                "epoch-1 replay diverged (workers={workers})"
            );
            assert!(
                v2.iter().zip(&r2).all(|(a, b)| a.to_bits() == b.to_bits()),
                "epoch-2 replay diverged (workers={workers})"
            );
        }
    }

    #[test]
    fn chain_propagates_influence() {
        // 3 → 2 → 1 → 0: influence flows downstream; node 0 tops.
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(3, 2, 1.0);
        g.add_edge(2, 1, 1.0);
        g.add_edge(1, 0, 1.0);
        let c = eigenvector_centrality(&g, 500);
        assert!(c[0] >= c[1] && c[1] >= c[2], "{c:?}");
    }
}
