//! Eigenvector centrality by power iteration.
//!
//! The paper uses eigenvector centrality to select the 50 most "influencing"
//! actors (§6.3). Centrality is computed on the *incoming* direction: an
//! actor is influential when influential actors respond to them.

use crate::graph::DiGraph;

/// Computes eigenvector centrality scores (L2-normalised, non-negative).
///
/// Power iteration on `x ← A^T x` (x_i accumulates from nodes pointing at
/// i), with self-loops ignored and a small teleport term `eps` to guarantee
/// convergence on disconnected graphs. Iterates until the L1 change drops
/// below `1e-9` or `max_iter` rounds.
pub fn eigenvector_centrality(g: &DiGraph, max_iter: usize) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let eps = 1e-4 / n as f64;
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    let mut next = vec![0.0; n];
    for _ in 0..max_iter {
        for v in next.iter_mut() {
            *v = eps;
        }
        for u in 0..n as u32 {
            let xu = x[u as usize];
            if xu == 0.0 {
                continue;
            }
            for &(v, w) in g.out_edges(u) {
                if v != u {
                    next[v as usize] += w * xu;
                }
            }
        }
        let norm: f64 = next.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            // No edges at all: uniform centrality.
            return vec![1.0 / (n as f64).sqrt(); n];
        }
        let mut delta = 0.0;
        for i in 0..n {
            let v = next[i] / norm;
            delta += (v - x[i]).abs();
            x[i] = v;
        }
        if delta < 1e-9 {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star graph: everyone replies to node 0.
    fn star(n: usize) -> DiGraph {
        let mut g = DiGraph::with_nodes(n);
        for i in 1..n as u32 {
            g.add_edge(i, 0, 1.0);
        }
        g
    }

    #[test]
    fn hub_of_star_has_highest_centrality() {
        let g = star(10);
        let c = eigenvector_centrality(&g, 100);
        let hub = c[0];
        assert!(c.iter().skip(1).all(|&v| v < hub), "{c:?}");
    }

    #[test]
    fn scores_are_normalised_and_nonnegative() {
        let g = star(20);
        let c = eigenvector_centrality(&g, 100);
        let norm: f64 = c.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
        assert!(c.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn weight_increases_influence() {
        // Two receivers; node 2 receives double weight from the same source.
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 2.0);
        g.add_edge(3, 0, 1.0); // give source some centrality
        let c = eigenvector_centrality(&g, 200);
        assert!(c[2] > c[1], "{c:?}");
    }

    #[test]
    fn empty_graph_yields_empty() {
        let g = DiGraph::with_nodes(0);
        assert!(eigenvector_centrality(&g, 10).is_empty());
    }

    #[test]
    fn edgeless_graph_is_uniform() {
        let g = DiGraph::with_nodes(4);
        let c = eigenvector_centrality(&g, 10);
        for w in c.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn self_loops_do_not_inflate() {
        let mut a = DiGraph::with_nodes(3);
        a.add_edge(1, 0, 1.0);
        a.add_edge(2, 0, 1.0);
        let mut b = a.clone();
        b.add_edge(0, 0, 100.0);
        let ca = eigenvector_centrality(&a, 200);
        let cb = eigenvector_centrality(&b, 200);
        assert!((ca[0] - cb[0]).abs() < 1e-6, "{ca:?} vs {cb:?}");
    }

    #[test]
    fn chain_propagates_influence() {
        // 3 → 2 → 1 → 0: influence flows downstream; node 0 tops.
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(3, 2, 1.0);
        g.add_edge(2, 1, 1.0);
        g.add_edge(1, 0, 1.0);
        let c = eigenvector_centrality(&g, 500);
        assert!(c[0] >= c[1] && c[1] >= c[2], "{c:?}");
    }
}
