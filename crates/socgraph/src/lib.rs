//! Directed weighted interaction graphs and actor-popularity metrics.
//!
//! Paper §6.1 builds "a social graph where nodes correspond with forum
//! actors and edges are the interactions between them, weighted by the
//! number of responses", then computes:
//!
//! * an **H-index** per actor ("an actor has H threads with at least H
//!   replies") and **i-10 / i-50 / i-100** indices;
//! * **eigenvector centrality**, "a metric indicating the influence of each
//!   node in the network", used to pick the 50 most influencing actors.
//!
//! This crate provides those primitives generically over `u32` node ids so
//! it can be reused on any interaction network.

pub mod centrality;
pub mod graph;
pub mod hindex;
pub mod pagerank;

pub use centrality::{
    eigenvector_centrality, eigenvector_centrality_from, eigenvector_centrality_par,
};
pub use graph::DiGraph;
pub use hindex::{h_index, i_index};
pub use pagerank::{pagerank, pagerank_par, pagerank_par_from};
