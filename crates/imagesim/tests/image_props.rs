//! Property tests over the image substrate: rendering, scoring, hashing
//! and transforms interact consistently for every class and seed.

use imagesim::validation::{build_validation_set, ValidationLabel};
use imagesim::{
    nsfw_score, ocr_word_count, ImageClass, ImageSpec, PaymentPlatform, RobustHash, Transform,
};
use proptest::prelude::*;

fn any_class() -> impl Strategy<Value = ImageClass> {
    prop_oneof![
        Just(ImageClass::ModelDressed),
        Just(ImageClass::ModelNude),
        Just(ImageClass::ModelSexual),
        Just(ImageClass::PaymentScreenshot(PaymentPlatform::PayPal)),
        Just(ImageClass::PaymentScreenshot(
            PaymentPlatform::AmazonGiftCard
        )),
        Just(ImageClass::PaymentScreenshot(PaymentPlatform::Bitcoin)),
        Just(ImageClass::PaymentScreenshot(PaymentPlatform::Cash)),
        Just(ImageClass::ChatScreenshot),
        Just(ImageClass::DirectoryThumbnails),
        Just(ImageClass::ErrorBanner),
        Just(ImageClass::Landscape),
        Just(ImageClass::Document),
        Just(ImageClass::Meme),
        Just(ImageClass::PortraitCasual),
    ]
}

fn spec_of(class: ImageClass, model: u32, variant: u64) -> ImageSpec {
    if class.is_model() {
        ImageSpec::model_photo(class, model.max(1), variant)
    } else {
        ImageSpec::of(class, variant)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every class renders deterministically and scores stay in range.
    #[test]
    fn render_and_score_total(class in any_class(), model in 1u32..10_000, variant in 0u64..100_000) {
        let spec = spec_of(class, model, variant);
        let a = spec.render();
        let b = spec.render();
        prop_assert_eq!(&a, &b);
        let score = nsfw_score(&a);
        prop_assert!((0.0..=1.0).contains(&score));
        let _words = ocr_word_count(&a); // must not panic
    }

    /// Transform chains keep dimensions and determinism.
    #[test]
    fn transform_chains_are_stable(
        class in any_class(),
        variant in 0u64..10_000,
        order in prop::collection::vec(0usize..5, 0..4),
    ) {
        let spec = spec_of(class, 7, variant);
        let transforms = [
            Transform::MirrorHorizontal,
            Transform::Brightness(15),
            Transform::Noise { amplitude: 6, seed: 9 },
            Transform::Watermark { seed: 2 },
            Transform::CropMargin { percent: 8 },
        ];
        let mut a = spec.render();
        let mut b = spec.render();
        for &i in &order {
            a = transforms[i].apply(&a);
            b = transforms[i].apply(&b);
        }
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.width(), 64);
        prop_assert_eq!(a.height(), 64);
    }

    /// Hash distance is a metric-ish: symmetric, zero on self.
    #[test]
    fn hash_distance_symmetry(v1 in 0u64..5_000, v2 in 0u64..5_000) {
        let a = RobustHash::of(&spec_of(ImageClass::ModelNude, 3, v1).render());
        let b = RobustHash::of(&spec_of(ImageClass::ModelNude, 4, v2).render());
        prop_assert_eq!(a.distance(&b), b.distance(&a));
        prop_assert_eq!(a.distance(&a), 0);
        prop_assert!(a.distance(&b) <= 256);
    }

    /// Validation sets always have the Lopes-style composition, and nude
    /// members always out-score the NSFV hard threshold.
    #[test]
    fn validation_set_composition(seed in 0u64..500) {
        let set = build_validation_set(seed);
        prop_assert_eq!(set.len(), 240);
        let nude = set.iter().filter(|v| v.label == ValidationLabel::Nude).count();
        prop_assert_eq!(nude, 90);
        // Spot-check a handful of nude members per case (full render of
        // 240 images per case would be slow).
        for v in set.iter().filter(|v| v.label == ValidationLabel::Nude).take(3) {
            prop_assert!(nsfw_score(&v.spec.render()) > 0.3);
        }
    }
}
