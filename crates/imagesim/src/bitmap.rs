//! Small RGB rasters with the drawing and sampling primitives the
//! generators and classifiers need.

use serde::{Deserialize, Serialize};

/// Canonical render size. Large enough for 8×8 block hashing and glyph-row
/// detection, small enough to render hundreds of thousands of images.
pub const SIZE: usize = 64;

/// An RGB bitmap. Pixels are row-major `[r, g, b]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    width: usize,
    height: usize,
    px: Vec<[u8; 3]>,
}

impl Bitmap {
    /// Creates a bitmap filled with `color`.
    pub fn filled(width: usize, height: usize, color: [u8; 3]) -> Bitmap {
        assert!(width > 0 && height > 0, "empty bitmap");
        Bitmap {
            width,
            height,
            px: vec![color; width * height],
        }
    }

    /// Creates the canonical 64×64 bitmap filled with `color`.
    pub fn canvas(color: [u8; 3]) -> Bitmap {
        Bitmap::filled(SIZE, SIZE, color)
    }

    /// Reshapes this bitmap to `width × height` filled with `color`,
    /// reusing the existing pixel allocation. The buffer-recycling
    /// equivalent of [`Bitmap::filled`] for render scratch arenas.
    pub fn reset(&mut self, width: usize, height: usize, color: [u8; 3]) {
        assert!(width > 0 && height > 0, "empty bitmap");
        self.width = width;
        self.height = height;
        self.px.clear();
        self.px.resize(width * height, color);
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`. Panics out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        self.px[y * self.width + x]
    }

    /// Sets pixel `(x, y)`; silently ignores out-of-bounds writes so
    /// generators can draw shapes that overlap the border.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, color: [u8; 3]) {
        if x < self.width && y < self.height {
            self.px[y * self.width + x] = color;
        }
    }

    /// Fills the axis-aligned rectangle `[x0, x1) × [y0, y1)` (clamped).
    pub fn fill_rect(&mut self, x0: usize, y0: usize, x1: usize, y1: usize, color: [u8; 3]) {
        for y in y0..y1.min(self.height) {
            for x in x0..x1.min(self.width) {
                self.px[y * self.width + x] = color;
            }
        }
    }

    /// Fills an ellipse centred at `(cx, cy)` with radii `(rx, ry)`.
    /// Used for heads/limbs/body masses in model-photo rendering.
    pub fn fill_ellipse(&mut self, cx: f32, cy: f32, rx: f32, ry: f32, color: [u8; 3]) {
        if rx <= 0.0 || ry <= 0.0 {
            return;
        }
        let x_lo = (cx - rx).floor().max(0.0) as usize;
        let x_hi = ((cx + rx).ceil() as usize).min(self.width.saturating_sub(1));
        let y_lo = (cy - ry).floor().max(0.0) as usize;
        let y_hi = ((cy + ry).ceil() as usize).min(self.height.saturating_sub(1));
        for y in y_lo..=y_hi {
            for x in x_lo..=x_hi {
                let dx = (x as f32 - cx) / rx;
                let dy = (y as f32 - cy) / ry;
                if dx * dx + dy * dy <= 1.0 {
                    self.px[y * self.width + x] = color;
                }
            }
        }
    }

    /// Vertical gradient from `top` to `bottom` over the full canvas.
    pub fn fill_vgradient(&mut self, top: [u8; 3], bottom: [u8; 3]) {
        let (w, h) = (self.width, self.height);
        for (y, row) in self.px.chunks_exact_mut(w).enumerate() {
            let t = y as f32 / (h - 1).max(1) as f32;
            row.fill([
                lerp_u8(top[0], bottom[0], t),
                lerp_u8(top[1], bottom[1], t),
                lerp_u8(top[2], bottom[2], t),
            ]);
        }
    }

    /// Multiplies every pixel by a per-column factor interpolated from
    /// `left` to `right` — directional lighting falloff. Factors are
    /// clamped to `[0, 2]`. Pixels are independent, so the row-major walk
    /// (with factors hoisted per column) produces exactly the same bytes
    /// as a column-major one.
    pub fn shade_columns(&mut self, left: f32, right: f32) {
        let w = self.width;
        let factors: Vec<f32> = (0..w)
            .map(|x| {
                let t = x as f32 / (w - 1).max(1) as f32;
                (left + (right - left) * t).clamp(0.0, 2.0)
            })
            .collect();
        for row in self.px.chunks_exact_mut(w) {
            for (p, &f) in row.iter_mut().zip(&factors) {
                *p = [shade_u8(p[0], f), shade_u8(p[1], f), shade_u8(p[2], f)];
            }
        }
    }

    /// Rec. 601 luminance in `[0, 255]`.
    #[inline]
    pub fn luminance(&self, x: usize, y: usize) -> f32 {
        lum(self.get(x, y))
    }

    /// Mean luminance of the rectangle `[x0, x1) × [y0, y1)` (clamped).
    /// Returns 0 for empty intersections.
    pub fn mean_luminance(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f32 {
        let x1 = x1.min(self.width);
        let y1 = y1.min(self.height);
        if x0 >= x1 || y0 >= y1 {
            return 0.0;
        }
        let mut acc = 0.0;
        for y in y0..y1 {
            for x in x0..x1 {
                acc += self.luminance(x, y);
            }
        }
        acc / ((x1 - x0) * (y1 - y0)) as f32
    }

    /// Nearest-neighbour resample to `w × h`.
    pub fn resize(&self, w: usize, h: usize) -> Bitmap {
        let mut out = Bitmap::filled(1, 1, [0, 0, 0]);
        self.resize_into(w, h, &mut out);
        out
    }

    /// [`Bitmap::resize`] into an existing bitmap, reusing its
    /// allocation. `out` must not alias `self`.
    pub fn resize_into(&self, w: usize, h: usize, out: &mut Bitmap) {
        assert!(w > 0 && h > 0, "empty resize target");
        out.reset(w, h, [0, 0, 0]);
        for y in 0..h {
            let sy = y * self.height / h;
            for x in 0..w {
                let sx = x * self.width / w;
                out.px[y * w + x] = self.get(sx, sy);
            }
        }
    }

    /// One pixel row as a slice (the fused measurement kernel walks rows).
    #[inline]
    pub fn row(&self, y: usize) -> &[[u8; 3]] {
        &self.px[y * self.width..(y + 1) * self.width]
    }

    /// Mutable raw pixel access for this crate's row-major hot loops
    /// (speckle, shading, per-pixel transforms) — same raster, minus the
    /// per-pixel index arithmetic and bounds checks of [`Bitmap::set`].
    #[inline]
    pub(crate) fn pixels_mut(&mut self) -> &mut [[u8; 3]] {
        &mut self.px
    }

    /// Makes `self` a copy of `other`, reusing this bitmap's allocation
    /// (the scratch-arena analogue of `clone`).
    pub fn copy_from(&mut self, other: &Bitmap) {
        self.width = other.width;
        self.height = other.height;
        self.px.clear();
        self.px.extend_from_slice(&other.px);
    }

    /// Fraction of pixels satisfying `pred`.
    pub fn fraction_where(&self, pred: impl Fn([u8; 3]) -> bool) -> f64 {
        let hits = self.px.iter().filter(|&&p| pred(p)).count();
        hits as f64 / self.px.len() as f64
    }

    /// Raw pixel access (for hashing/digesting).
    pub fn pixels(&self) -> &[[u8; 3]] {
        &self.px
    }

    /// Encodes as binary PPM (P6) — the simplest portable image format,
    /// for eyeballing what the generators produce (`convert x.ppm x.png`).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.px.len() * 3);
        out.extend_from_slice(format!("P6\n{} {}\n255\n", self.width, self.height).as_bytes());
        for p in &self.px {
            out.extend_from_slice(p);
        }
        out
    }

    /// Decodes a binary PPM produced by [`Bitmap::to_ppm`]. Returns `None`
    /// on anything that is not a well-formed P6 with max value 255.
    pub fn from_ppm(data: &[u8]) -> Option<Bitmap> {
        // Scan the four header tokens byte-wise (the body is binary, so a
        // UTF-8 parse of a fixed prefix would be fragile).
        let mut tokens: Vec<String> = Vec::with_capacity(4);
        let mut current = String::new();
        let mut body_start = None;
        for (i, &b) in data.iter().enumerate() {
            if b.is_ascii_whitespace() {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                    if tokens.len() == 4 {
                        body_start = Some(i + 1);
                        break;
                    }
                }
            } else if b.is_ascii_graphic() {
                current.push(b as char);
            } else {
                return None; // binary byte inside the header
            }
        }
        let body_start = body_start?;
        if tokens[0] != "P6" {
            return None;
        }
        let width: usize = tokens[1].parse().ok()?;
        let height: usize = tokens[2].parse().ok()?;
        let maxval: usize = tokens[3].parse().ok()?;
        if maxval != 255 || width == 0 || height == 0 {
            return None;
        }
        let body = &data[body_start..];
        if body.len() != width * height * 3 {
            return None;
        }
        let mut bmp = Bitmap::filled(width, height, [0; 3]);
        for (i, chunk) in body.chunks_exact(3).enumerate() {
            bmp.px[i] = [chunk[0], chunk[1], chunk[2]];
        }
        Some(bmp)
    }
}

/// Rec. 601 luminance of one pixel. The single shared expression behind
/// [`Bitmap::luminance`] and the fused measurement kernel — both paths
/// evaluate the exact same f32 arithmetic, which is what makes the fused
/// kernel's block/gradient sums bit-identical to the per-rect reference.
#[inline]
pub(crate) fn lum(p: [u8; 3]) -> f32 {
    let [r, g, b] = p;
    0.299 * r as f32 + 0.587 * g as f32 + 0.114 * b as f32
}

/// `((c as f32 * f).round().clamp(0.0, 255.0)) as u8` without the libm
/// `roundf` call. For `v = c·f ≥ 0.5`, truncating `v + 0.5` equals
/// round-half-away-from-zero: `v`'s ulp is at least 2⁻²⁴ there, so any
/// rounding of the sum moves it by less than the distance to the next
/// truncation boundary; the saturating float→int cast supplies the
/// upper clamp. Below 0.5 the answer is 0, guarded explicitly because
/// there `v + 0.5` can round up across 1.0 (e.g. `v = 0.5 − 2⁻²⁵`).
/// The equivalence is proved against the original expression — every
/// channel value × a dense factor sweep plus every tie neighbourhood —
/// in `shade_u8_matches_round_clamp_exactly`.
#[inline]
fn shade_u8(c: u8, f: f32) -> u8 {
    let v = c as f32 * f;
    if v < 0.5 {
        0
    } else {
        (v + 0.5) as u8
    }
}

#[inline]
fn lerp_u8(a: u8, b: u8, t: f32) -> u8 {
    (a as f32 + (b as f32 - a as f32) * t)
        .round()
        .clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_canvas_is_uniform() {
        let b = Bitmap::canvas([10, 20, 30]);
        assert_eq!(b.width(), SIZE);
        assert_eq!(b.get(0, 0), [10, 20, 30]);
        assert_eq!(b.get(SIZE - 1, SIZE - 1), [10, 20, 30]);
    }

    #[test]
    fn rect_fill_clamps() {
        let mut b = Bitmap::filled(4, 4, [0; 3]);
        b.fill_rect(2, 2, 100, 100, [255; 3]);
        assert_eq!(b.get(3, 3), [255; 3]);
        assert_eq!(b.get(1, 1), [0; 3]);
    }

    #[test]
    fn ellipse_covers_centre_not_corners() {
        let mut b = Bitmap::filled(20, 20, [0; 3]);
        b.fill_ellipse(10.0, 10.0, 5.0, 8.0, [200; 3]);
        assert_eq!(b.get(10, 10), [200; 3]);
        assert_eq!(b.get(0, 0), [0; 3]);
        assert_eq!(b.get(19, 19), [0; 3]);
    }

    #[test]
    fn gradient_is_monotone_in_luminance() {
        let mut b = Bitmap::canvas([0; 3]);
        b.fill_vgradient([255; 3], [0; 3]);
        assert!(b.luminance(0, 0) > b.luminance(0, SIZE - 1));
    }

    #[test]
    fn mean_luminance_of_uniform_region() {
        let b = Bitmap::filled(8, 8, [100, 100, 100]);
        let m = b.mean_luminance(0, 0, 8, 8);
        assert!((m - 100.0).abs() < 0.5);
        assert_eq!(b.mean_luminance(5, 5, 5, 9), 0.0); // empty slice
    }

    #[test]
    fn resize_preserves_uniform_content() {
        let b = Bitmap::filled(64, 64, [7, 8, 9]);
        let s = b.resize(8, 8);
        assert_eq!(s.width(), 8);
        assert!(s.pixels().iter().all(|&p| p == [7, 8, 9]));
    }

    #[test]
    fn fraction_where_counts() {
        let mut b = Bitmap::filled(2, 2, [0; 3]);
        b.set(0, 0, [255; 3]);
        assert!((b.fraction_where(|p| p[0] > 128) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn set_out_of_bounds_is_ignored() {
        let mut b = Bitmap::filled(2, 2, [0; 3]);
        b.set(5, 5, [1; 3]); // must not panic
        assert_eq!(b.get(1, 1), [0; 3]);
    }

    #[test]
    fn ppm_roundtrip() {
        let mut b = Bitmap::filled(5, 3, [10, 20, 30]);
        b.set(4, 2, [200, 100, 50]);
        let ppm = b.to_ppm();
        assert!(ppm.starts_with(b"P6\n5 3\n255\n"));
        let back = Bitmap::from_ppm(&ppm).expect("roundtrip");
        assert_eq!(back, b);
    }

    #[test]
    fn ppm_rejects_garbage() {
        assert!(Bitmap::from_ppm(b"P5\n2 2\n255\n....").is_none());
        assert!(Bitmap::from_ppm(b"P6\n2 2\n255\nxx").is_none()); // short body
        assert!(Bitmap::from_ppm(b"").is_none());
    }

    #[test]
    #[should_panic(expected = "empty bitmap")]
    fn zero_size_rejected() {
        let _ = Bitmap::filled(0, 4, [0; 3]);
    }

    #[test]
    fn reset_matches_filled_and_reuses_any_prior_shape() {
        let mut b = Bitmap::filled(3, 9, [1, 2, 3]);
        b.set(2, 8, [9; 3]);
        b.reset(5, 4, [7, 8, 9]);
        assert_eq!(b, Bitmap::filled(5, 4, [7, 8, 9]));
        b.reset(2, 2, [0; 3]);
        assert_eq!(b, Bitmap::filled(2, 2, [0; 3]));
    }

    #[test]
    fn resize_into_matches_resize() {
        let mut src = Bitmap::filled(10, 6, [5; 3]);
        src.fill_rect(0, 0, 5, 3, [200, 10, 30]);
        let mut out = Bitmap::filled(1, 1, [0; 3]);
        src.resize_into(7, 7, &mut out);
        assert_eq!(out, src.resize(7, 7));
    }

    #[test]
    fn row_slices_cover_the_raster() {
        let mut b = Bitmap::filled(3, 2, [0; 3]);
        b.set(1, 1, [42; 3]);
        assert_eq!(b.row(0), &[[0; 3], [0; 3], [0; 3]]);
        assert_eq!(b.row(1)[1], [42; 3]);
    }

    /// Exhaustive proof that the libm-free shading cast equals the
    /// original `round().clamp()` expression: every channel value against
    /// a dense factor sweep of `[0, 2]`, plus the exact-tie factors
    /// `f = (k + 0.5) / c` where round-half-away behaviour is decided.
    #[test]
    fn shade_u8_matches_round_clamp_exactly() {
        let reference = |c: u8, f: f32| ((c as f32 * f).round().clamp(0.0, 255.0)) as u8;
        for c in 0..=255u8 {
            for i in 0..=16384u32 {
                let f = i as f32 / 8192.0;
                assert_eq!(shade_u8(c, f), reference(c, f), "c={c} f={f}");
            }
            if c > 0 {
                for k in 0..=510u32 {
                    let tie = (k as f32 + 0.5) / c as f32;
                    for f in [
                        f32::from_bits(tie.to_bits() - 1),
                        tie,
                        f32::from_bits(tie.to_bits() + 1),
                    ] {
                        if (0.0..=2.0).contains(&f) {
                            assert_eq!(shade_u8(c, f), reference(c, f), "tie c={c} f={f}");
                        }
                    }
                }
            }
        }
    }
}
