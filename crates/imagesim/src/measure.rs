//! Fused single-pass measurement kernel.
//!
//! The NSFV pipeline measures four things about every image: its robust
//! hash, its exact content digest, its NSFW score, and its OCR word count
//! (paper §4.3–4.4). Computed independently those are four full scans of
//! the raster — and the hash alone re-reads every pixel once per plane
//! through `mean_luminance`. [`measure_with`] walks the raster exactly
//! once, accumulating all four measurements per row, and is bit-identical
//! to the multi-pass [`reference`] by construction:
//!
//! * Every hash cell (8×8 blocks, 9×8 and 8×9 gradient grids, 8×8 chroma
//!   blocks) is a contiguous rectangle, and for rasters at least 9×9 the
//!   cells of each plane partition the raster — no pixel is shared, no
//!   pixel is dropped. A pixel's cell membership is a table lookup
//!   ([`MeasureScratch`] keys the tables on the raster dimensions).
//! * Within one cell, the global row-major walk visits pixels in exactly
//!   the order the reference's per-rectangle `mean_luminance` loop does
//!   (`y` outer, `x` inner), so the f32 partial sums see the same
//!   additions in the same order and every intermediate rounding is
//!   reproduced exactly.
//! * The per-pixel arithmetic is shared, not duplicated: luminance is
//!   [`crate::bitmap::lum`], digest mixing is [`crate::hash::Fnv`], skin
//!   detection is [`crate::nsfw::is_skin`], ink-run extraction is
//!   [`crate::ocr::row_runs_into`], and the finishers
//!   ([`crate::hash::median_bits`] and friends,
//!   [`crate::nsfw::nsfw_score_from_fraction`],
//!   [`crate::ocr::count_words`]) are the very functions the reference
//!   path calls.
//!
//! Rasters smaller than 9×9 fall back to [`reference`]: there the
//! `.max(x0 + 1)` clamps in the gradient grids can make cells overlap,
//! the partition argument breaks, and such rasters are cheap anyway.

use crate::bitmap::{lum, Bitmap};
use crate::hash::{self, content_digest, RobustHash};
use crate::nsfw::{self, is_skin, nsfw_score_from_fraction};
use crate::ocr::{self, Run};

/// Everything the pipeline measures about one rendered image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measures {
    /// 256-bit robust perceptual hash (PhotoDNA/TinEye analogue).
    pub hash: RobustHash,
    /// FNV-1a content digest for exact-duplicate detection.
    pub digest: u64,
    /// NSFW probability score in `[0, 1]` (OpenNSFW analogue).
    pub nsfw: f64,
    /// OCR word count (Tesseract analogue).
    pub ocr_words: usize,
}

/// The multi-pass reference: four independent scans through the public
/// single-measurement entry points. [`measure_with`] must agree with this
/// bit-for-bit; the equivalence tests below and the pipeline's snapshot
/// gate both hold it to that.
pub fn reference(bmp: &Bitmap) -> Measures {
    Measures {
        hash: RobustHash::of(bmp),
        digest: content_digest(bmp),
        nsfw: nsfw::nsfw_score(bmp),
        ocr_words: ocr::ocr_word_count(bmp),
    }
}

/// Measures an image in one pass with throwaway scratch. Hot loops should
/// hold a [`MeasureScratch`] and call [`measure_with`] instead.
pub fn measure(bmp: &Bitmap) -> Measures {
    measure_with(bmp, &mut MeasureScratch::new())
}

/// Reusable per-worker state for [`measure_with`]: cell-membership lookup
/// tables keyed on the raster dimensions, plus the row-luminance and
/// ink-run buffers. Rebuilt only when the dimensions change, so a worker
/// measuring a stream of same-sized renders allocates nothing per image.
#[derive(Debug, Clone)]
pub struct MeasureScratch {
    /// Dimensions the tables below were built for.
    dims: (usize, usize),
    /// `x` → 8×8 block column (`div_ceil` blocks, trailing ones may be empty).
    blk_col: Vec<u8>,
    /// `y` → 8×8 block row.
    blk_row: Vec<u8>,
    /// `x` → dhash column band (9 floor-division bands).
    d9_col: Vec<u8>,
    /// `y` → dhash row band (8 bands).
    d8_row: Vec<u8>,
    /// `x` → vdhash column band (8 bands).
    v8_col: Vec<u8>,
    /// `y` → vdhash row band (9 bands).
    v9_row: Vec<u8>,
    /// Per-band extents — the reference's mean divisors.
    blk_wx: [usize; 8],
    blk_hy: [usize; 8],
    d9_wx: [usize; 9],
    d8_hy: [usize; 8],
    v8_wx: [usize; 8],
    v9_hy: [usize; 9],
    /// One row of luminances, shared by the hash planes and run extraction.
    row_lum: Vec<f32>,
    /// Ink runs accumulated across the pass, fed to `count_words`.
    runs: Vec<Run>,
}

impl Default for MeasureScratch {
    fn default() -> MeasureScratch {
        MeasureScratch::new()
    }
}

impl MeasureScratch {
    /// Empty scratch; the first [`measure_with`] call sizes it.
    pub fn new() -> MeasureScratch {
        MeasureScratch {
            dims: (0, 0),
            blk_col: Vec::new(),
            blk_row: Vec::new(),
            d9_col: Vec::new(),
            d8_row: Vec::new(),
            v8_col: Vec::new(),
            v9_row: Vec::new(),
            blk_wx: [0; 8],
            blk_hy: [0; 8],
            d9_wx: [0; 9],
            d8_hy: [0; 8],
            v8_wx: [0; 8],
            v9_hy: [0; 9],
            row_lum: Vec::new(),
            runs: Vec::new(),
        }
    }

    fn prepare(&mut self, w: usize, h: usize) {
        if self.dims == (w, h) {
            return;
        }
        self.dims = (w, h);
        fill_blocks(w, &mut self.blk_col, &mut self.blk_wx);
        fill_blocks(h, &mut self.blk_row, &mut self.blk_hy);
        fill_bands(w, &mut self.d9_col, &mut self.d9_wx);
        fill_bands(h, &mut self.d8_row, &mut self.d8_hy);
        fill_bands(w, &mut self.v8_col, &mut self.v8_wx);
        fill_bands(h, &mut self.v9_row, &mut self.v9_hy);
        self.row_lum.clear();
        self.row_lum.resize(w, 0.0);
    }
}

/// Membership table for the 8 `div_ceil(n, 8)`-sized hash blocks along one
/// axis. Trailing blocks can be empty (extent 0) when `n` is not a
/// multiple of 8 — the reference leaves their means at 0.0 and so does the
/// finisher in [`measure_with`].
fn fill_blocks(n: usize, table: &mut Vec<u8>, extents: &mut [usize; 8]) {
    let bs = n.div_ceil(8);
    table.clear();
    table.resize(n, 0);
    for (b, extent) in extents.iter_mut().enumerate() {
        let lo = (b * bs).min(n);
        let hi = ((b + 1) * bs).min(n);
        *extent = hi - lo;
        for t in &mut table[lo..hi] {
            *t = b as u8;
        }
    }
}

/// Membership table for the `K` floor-division gradient bands
/// `[g*n/K, (g+1)*n/K)` along one axis. For `n >= K` every band is
/// non-empty and the bands partition `[0, n)`.
fn fill_bands<const K: usize>(n: usize, table: &mut Vec<u8>, extents: &mut [usize; K]) {
    table.clear();
    table.resize(n, 0);
    for (g, extent) in extents.iter_mut().enumerate() {
        let lo = g * n / K;
        let hi = (g + 1) * n / K;
        *extent = hi - lo;
        for t in &mut table[lo..hi] {
            *t = g as u8;
        }
    }
}

/// Measures an image in a single pass over its rows, reusing `scratch`.
/// Bit-identical to [`reference`] (see the module docs for why).
pub fn measure_with(bmp: &Bitmap, scratch: &mut MeasureScratch) -> Measures {
    let (w, h) = (bmp.width(), bmp.height());
    if w < 9 || h < 9 {
        return reference(bmp);
    }
    scratch.prepare(w, h);
    let MeasureScratch {
        blk_col,
        blk_row,
        d9_col,
        d8_row,
        v8_col,
        v9_row,
        blk_wx,
        blk_hy,
        d9_wx,
        d8_hy,
        v8_wx,
        v9_hy,
        row_lum,
        runs,
        ..
    } = scratch;

    let mut luma_sum = [0.0f32; 64];
    let mut chroma_sum = [0.0f32; 64];
    let mut dsum = [[0.0f32; 9]; 8];
    let mut vsum = [[0.0f32; 8]; 9];
    let mut digest = hash::Fnv::new();
    digest.mix((w & 0xFF) as u8);
    digest.mix((h & 0xFF) as u8);
    let mut skin_hits = 0usize;
    runs.clear();

    for y in 0..h {
        let row = bmp.row(y);
        // Pure elementwise map with no cross-lane state — the compiler
        // auto-vectorizes this, and f32 results are position-independent
        // so vectorization cannot perturb them.
        for (l, &p) in row_lum.iter_mut().zip(row) {
            *l = lum(p);
        }
        let by8 = blk_row[y] as usize * 8;
        let drow = &mut dsum[d8_row[y] as usize];
        let vrow = &mut vsum[v9_row[y] as usize];
        for (x, (&p, &l)) in row.iter().zip(row_lum.iter()).enumerate() {
            digest.mix(p[0]);
            digest.mix(p[1]);
            digest.mix(p[2]);
            if is_skin(p) {
                skin_hits += 1;
            }
            let blk = by8 + blk_col[x] as usize;
            luma_sum[blk] += l;
            chroma_sum[blk] += p[0] as f32 - p[2] as f32;
            drow[d9_col[x] as usize] += l;
            vrow[v8_col[x] as usize] += l;
        }
        ocr::row_runs_into(y, row_lum, runs);
    }

    // Finish with the reference's own divisor expressions and thresholds.
    let mut luma_means = [0.0f32; 64];
    let mut chroma_means = [0.0f32; 64];
    for by in 0..8 {
        for bx in 0..8 {
            let cnt = blk_wx[bx] * blk_hy[by];
            if cnt > 0 {
                luma_means[by * 8 + bx] = luma_sum[by * 8 + bx] / cnt as f32;
                chroma_means[by * 8 + bx] = chroma_sum[by * 8 + bx] / cnt as f32;
            }
        }
    }
    let mut dcells = [[0.0f32; 9]; 8];
    for (gy, row) in dcells.iter_mut().enumerate() {
        for (gx, cell) in row.iter_mut().enumerate() {
            *cell = dsum[gy][gx] / (d9_wx[gx] * d8_hy[gy]) as f32;
        }
    }
    let mut vcells = [[0.0f32; 8]; 9];
    for (gy, row) in vcells.iter_mut().enumerate() {
        for (gx, cell) in row.iter_mut().enumerate() {
            *cell = vsum[gy][gx] / (v8_wx[gx] * v9_hy[gy]) as f32;
        }
    }

    Measures {
        hash: RobustHash {
            bits: [
                hash::median_bits(&luma_means),
                hash::dhash_bits(&dcells),
                hash::vdhash_bits(&vcells),
                hash::median_bits(&chroma_means),
            ],
        },
        digest: digest.0,
        nsfw: nsfw_score_from_fraction(skin_hits as f64 / (w * h) as f64),
        ocr_words: ocr::count_words(bmp, runs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ImageClass, ImageSpec, PaymentPlatform};
    use crate::transform::Transform;

    fn assert_identical(bmp: &Bitmap, scratch: &mut MeasureScratch, ctx: &str) {
        let fused = measure_with(bmp, scratch);
        let multi = reference(bmp);
        assert_eq!(fused.hash, multi.hash, "hash: {ctx}");
        assert_eq!(fused.digest, multi.digest, "digest: {ctx}");
        assert_eq!(
            fused.nsfw.to_bits(),
            multi.nsfw.to_bits(),
            "nsfw {} vs {}: {ctx}",
            fused.nsfw,
            multi.nsfw
        );
        assert_eq!(fused.ocr_words, multi.ocr_words, "ocr: {ctx}");
    }

    fn all_classes() -> Vec<ImageClass> {
        vec![
            ImageClass::ModelDressed,
            ImageClass::ModelNude,
            ImageClass::ModelSexual,
            ImageClass::PaymentScreenshot(PaymentPlatform::PayPal),
            ImageClass::PaymentScreenshot(PaymentPlatform::AmazonGiftCard),
            ImageClass::PaymentScreenshot(PaymentPlatform::Bitcoin),
            ImageClass::PaymentScreenshot(PaymentPlatform::Cash),
            ImageClass::ChatScreenshot,
            ImageClass::DirectoryThumbnails,
            ImageClass::ErrorBanner,
            ImageClass::Landscape,
            ImageClass::PortraitCasual,
            ImageClass::Document,
            ImageClass::Meme,
        ]
    }

    fn all_transforms() -> Vec<Transform> {
        vec![
            Transform::Identity,
            Transform::MirrorHorizontal,
            Transform::Watermark { seed: 11 },
            Transform::Brightness(-25),
            Transform::Brightness(30),
            Transform::Noise {
                amplitude: 8,
                seed: 7,
            },
            Transform::CropMargin { percent: 10 },
            Transform::OcclusionBar { seed: 5 },
        ]
    }

    #[test]
    fn fused_matches_reference_for_every_class_and_transform() {
        // One scratch across the whole matrix: reuse must not leak state
        // between images.
        let mut scratch = MeasureScratch::new();
        for (i, class) in all_classes().into_iter().enumerate() {
            let spec = if class.is_model() {
                ImageSpec::model_photo(class, i as u32 + 1, i as u64)
            } else {
                ImageSpec::of(class, i as u64)
            };
            let base = spec.render();
            for t in all_transforms() {
                let bmp = t.apply(&base);
                assert_identical(&bmp, &mut scratch, &format!("{class:?} + {t:?}"));
            }
        }
    }

    #[test]
    fn fused_handles_non_canonical_and_awkward_sizes() {
        // Sizes that exercise empty trailing blocks (w % 8 != 0, small w)
        // and uneven gradient bands, interleaved so the scratch rebuilds
        // its tables between dimension changes.
        let base = ImageSpec::model_photo(ImageClass::ModelNude, 3, 9).render();
        let mut scratch = MeasureScratch::new();
        for (w, h) in [(9, 9), (48, 48), (10, 13), (64, 9), (9, 64), (17, 23)] {
            let bmp = base.resize(w, h);
            assert_identical(&bmp, &mut scratch, &format!("{w}x{h}"));
        }
    }

    #[test]
    fn tiny_rasters_fall_back_to_the_reference() {
        let base = ImageSpec::of(ImageClass::Document, 1).render();
        for (w, h) in [(1, 1), (5, 7), (8, 64), (64, 8)] {
            let bmp = base.resize(w, h);
            assert_identical(&bmp, &mut MeasureScratch::new(), &format!("{w}x{h}"));
        }
    }

    #[test]
    fn measure_and_measure_with_agree() {
        let bmp = ImageSpec::of(ImageClass::ChatScreenshot, 4).render();
        assert_eq!(
            measure(&bmp),
            measure_with(&bmp, &mut MeasureScratch::new())
        );
    }

    #[test]
    fn scratch_tables_are_rebuilt_only_on_dimension_change() {
        let mut scratch = MeasureScratch::new();
        let a = Bitmap::filled(32, 16, [120, 80, 60]);
        measure_with(&a, &mut scratch);
        assert_eq!(scratch.dims, (32, 16));
        let col_ptr = scratch.blk_col.as_ptr();
        measure_with(&a, &mut scratch);
        assert_eq!(scratch.blk_col.as_ptr(), col_ptr, "no rebuild on same dims");
        let b = Bitmap::filled(16, 32, [10, 20, 30]);
        measure_with(&b, &mut scratch);
        assert_eq!(scratch.dims, (16, 32));
    }
}
