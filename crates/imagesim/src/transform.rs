//! Image modifications applied by eWhoring actors.
//!
//! The paper documents that "actors purposely modify these images to bypass
//! reverse image searches" (§4.5) — watermarks, shadowing, and mirroring
//! (the latter "can be easily performed using automated tools, which are
//! shared in underground forums"). Transforms are serialisable values so
//! the world generator can record which modification a pack image carries
//! and the reverse-search evaluation can measure which ones defeat hashing.

use crate::bitmap::Bitmap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A single modification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transform {
    /// No modification (the image is reposted as-is).
    Identity,
    /// Horizontal flip — defeats non-mirror-invariant hashing.
    MirrorHorizontal,
    /// Semi-transparent watermark strip (site tag or actor tag).
    Watermark {
        /// Position/appearance seed.
        seed: u64,
    },
    /// Global brightness shift (positive or negative).
    Brightness(i16),
    /// Per-pixel noise, approximating recompression artefacts.
    Noise {
        /// Maximum per-channel perturbation.
        amplitude: i16,
        /// Noise stream seed.
        seed: u64,
    },
    /// Crop a margin of `percent`% on every side, then scale back up.
    CropMargin {
        /// Margin percentage in `1..=20`.
        percent: u8,
    },
    /// Black occlusion bar (face/eyes censoring, "shadowing parts").
    OcclusionBar {
        /// Position seed.
        seed: u64,
    },
}

impl Transform {
    /// Applies the transform, producing a new bitmap of the same size.
    pub fn apply(&self, bmp: &Bitmap) -> Bitmap {
        let mut out = bmp.clone();
        let mut tmp = Bitmap::filled(1, 1, [0; 3]);
        self.apply_into(&mut out, &mut tmp);
        out
    }

    /// Applies the transform in place. `tmp` is caller-owned scratch
    /// (only `CropMargin` uses it) so a hot loop can reuse both
    /// allocations across images. Produces exactly the pixels
    /// [`Transform::apply`] does — `apply` delegates here.
    pub fn apply_into(&self, bmp: &mut Bitmap, tmp: &mut Bitmap) {
        match *self {
            Transform::Identity => {}
            Transform::MirrorHorizontal => mirror_h(bmp),
            Transform::Watermark { seed } => watermark(bmp, seed),
            Transform::Brightness(delta) => brightness(bmp, delta),
            Transform::Noise { amplitude, seed } => noise(bmp, amplitude, seed),
            Transform::CropMargin { percent } => crop_margin(bmp, tmp, percent),
            Transform::OcclusionBar { seed } => occlusion(bmp, seed),
        }
    }

    /// True for transforms that empirically defeat the robust hash
    /// (used by the generator to plant "zero-match" pack images).
    pub fn defeats_hash(&self) -> bool {
        matches!(self, Transform::MirrorHorizontal)
    }
}

fn mirror_h(bmp: &mut Bitmap) {
    let w = bmp.width();
    for row in bmp.pixels_mut().chunks_exact_mut(w) {
        row.reverse();
    }
}

fn watermark(bmp: &mut Bitmap, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3A7E_12A2_4B5C_99D1);
    let y0 = rng.gen_range(0..bmp.height().saturating_sub(6));
    let x0 = rng.gen_range(0..bmp.width() / 2);
    let x1 = (x0 + bmp.width() / 3).min(bmp.width());
    // 50% alpha white strip with a dark tag inside.
    for y in y0..(y0 + 5).min(bmp.height()) {
        for x in x0..x1 {
            let [r, g, b] = bmp.get(x, y);
            bmp.set(
                x,
                y,
                [
                    ((r as u16 + 255) / 2) as u8,
                    ((g as u16 + 255) / 2) as u8,
                    ((b as u16 + 255) / 2) as u8,
                ],
            );
        }
    }
    bmp.fill_rect(x0 + 2, y0 + 2, x1.saturating_sub(2), y0 + 4, [40, 40, 40]);
}

fn brightness(bmp: &mut Bitmap, delta: i16) {
    for p in bmp.pixels_mut() {
        let adj = |c: u8| (c as i16 + delta).clamp(0, 255) as u8;
        *p = [adj(p[0]), adj(p[1]), adj(p[2])];
    }
}

fn noise(bmp: &mut Bitmap, amplitude: i16, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4E01_5E00);
    let amp = amplitude.max(1);
    // Row-major flat walk: identical RNG draw order to the nested (y, x)
    // loops this replaces.
    for p in bmp.pixels_mut() {
        let d = rng.gen_range(-amp..=amp);
        let adj = |c: u8| (c as i16 + d).clamp(0, 255) as u8;
        *p = [adj(p[0]), adj(p[1]), adj(p[2])];
    }
}

fn crop_margin(bmp: &mut Bitmap, tmp: &mut Bitmap, percent: u8) {
    let (ow, oh) = (bmp.width(), bmp.height());
    let pct = percent.clamp(1, 20) as usize;
    let mx = ow * pct / 100;
    let my = oh * pct / 100;
    let w = ow - 2 * mx;
    let h = oh - 2 * my;
    tmp.reset(w.max(1), h.max(1), [0; 3]);
    for y in 0..h {
        for x in 0..w {
            tmp.set(x, y, bmp.get(x + mx, y + my));
        }
    }
    tmp.resize_into(ow, oh, bmp);
}

fn occlusion(bmp: &mut Bitmap, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0CC1_0510);
    let y0 = rng.gen_range(4..bmp.height() / 2);
    bmp.fill_rect(8, y0, bmp.width() - 8, y0 + 4, [5, 5, 5]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ImageClass, ImageSpec};

    fn sample() -> Bitmap {
        ImageSpec::model_photo(ImageClass::ModelNude, 11, 4).render()
    }

    #[test]
    fn identity_is_exact() {
        let b = sample();
        assert_eq!(Transform::Identity.apply(&b), b);
    }

    #[test]
    fn mirror_is_involutive() {
        let b = sample();
        let twice = Transform::MirrorHorizontal.apply(&Transform::MirrorHorizontal.apply(&b));
        assert_eq!(twice, b);
    }

    #[test]
    fn transforms_preserve_dimensions() {
        let b = sample();
        for t in [
            Transform::MirrorHorizontal,
            Transform::Watermark { seed: 3 },
            Transform::Brightness(-30),
            Transform::Noise {
                amplitude: 8,
                seed: 5,
            },
            Transform::CropMargin { percent: 10 },
            Transform::OcclusionBar { seed: 2 },
        ] {
            let out = t.apply(&b);
            assert_eq!(out.width(), b.width(), "{t:?}");
            assert_eq!(out.height(), b.height(), "{t:?}");
        }
    }

    #[test]
    fn transforms_are_deterministic() {
        let b = sample();
        let t = Transform::Noise {
            amplitude: 8,
            seed: 5,
        };
        assert_eq!(t.apply(&b), t.apply(&b));
    }

    #[test]
    fn brightness_clamps_at_bounds() {
        let b = Bitmap::canvas([250; 3]);
        let bright = Transform::Brightness(20).apply(&b);
        assert_eq!(bright.get(0, 0), [255; 3]);
        let dark = Transform::Brightness(-255).apply(&b);
        assert_eq!(dark.get(0, 0), [0; 3]);
    }

    #[test]
    fn watermark_changes_a_limited_region() {
        let b = sample();
        let marked = Transform::Watermark { seed: 1 }.apply(&b);
        let changed = b
            .pixels()
            .iter()
            .zip(marked.pixels())
            .filter(|(a, m)| a != m)
            .count();
        let total = b.pixels().len();
        assert!(changed > 0);
        assert!(
            (changed as f64) < total as f64 * 0.15,
            "watermark touched {changed}/{total} pixels"
        );
    }

    #[test]
    fn apply_into_with_reused_scratch_matches_apply() {
        let b = sample();
        let mut work = Bitmap::filled(1, 1, [0; 3]);
        let mut tmp = Bitmap::filled(1, 1, [0; 3]);
        for t in [
            Transform::Identity,
            Transform::CropMargin { percent: 10 },
            Transform::MirrorHorizontal,
            Transform::Watermark { seed: 3 },
            Transform::CropMargin { percent: 1 },
            Transform::Brightness(-30),
            Transform::Noise {
                amplitude: 8,
                seed: 5,
            },
            Transform::CropMargin { percent: 20 },
            Transform::OcclusionBar { seed: 2 },
        ] {
            work.clone_from(&b);
            t.apply_into(&mut work, &mut tmp);
            assert_eq!(work, t.apply(&b), "{t:?}");
        }
    }

    #[test]
    fn only_mirror_reports_defeating_hash() {
        assert!(Transform::MirrorHorizontal.defeats_hash());
        assert!(!Transform::Watermark { seed: 0 }.defeats_hash());
        assert!(!Transform::Identity.defeats_hash());
    }
}
