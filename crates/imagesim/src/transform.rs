//! Image modifications applied by eWhoring actors.
//!
//! The paper documents that "actors purposely modify these images to bypass
//! reverse image searches" (§4.5) — watermarks, shadowing, and mirroring
//! (the latter "can be easily performed using automated tools, which are
//! shared in underground forums"). Transforms are serialisable values so
//! the world generator can record which modification a pack image carries
//! and the reverse-search evaluation can measure which ones defeat hashing.

use crate::bitmap::Bitmap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A single modification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transform {
    /// No modification (the image is reposted as-is).
    Identity,
    /// Horizontal flip — defeats non-mirror-invariant hashing.
    MirrorHorizontal,
    /// Semi-transparent watermark strip (site tag or actor tag).
    Watermark {
        /// Position/appearance seed.
        seed: u64,
    },
    /// Global brightness shift (positive or negative).
    Brightness(i16),
    /// Per-pixel noise, approximating recompression artefacts.
    Noise {
        /// Maximum per-channel perturbation.
        amplitude: i16,
        /// Noise stream seed.
        seed: u64,
    },
    /// Crop a margin of `percent`% on every side, then scale back up.
    CropMargin {
        /// Margin percentage in `1..=20`.
        percent: u8,
    },
    /// Black occlusion bar (face/eyes censoring, "shadowing parts").
    OcclusionBar {
        /// Position seed.
        seed: u64,
    },
}

impl Transform {
    /// Applies the transform, producing a new bitmap of the same size.
    pub fn apply(&self, bmp: &Bitmap) -> Bitmap {
        match *self {
            Transform::Identity => bmp.clone(),
            Transform::MirrorHorizontal => mirror_h(bmp),
            Transform::Watermark { seed } => watermark(bmp, seed),
            Transform::Brightness(delta) => brightness(bmp, delta),
            Transform::Noise { amplitude, seed } => noise(bmp, amplitude, seed),
            Transform::CropMargin { percent } => crop_margin(bmp, percent),
            Transform::OcclusionBar { seed } => occlusion(bmp, seed),
        }
    }

    /// True for transforms that empirically defeat the robust hash
    /// (used by the generator to plant "zero-match" pack images).
    pub fn defeats_hash(&self) -> bool {
        matches!(self, Transform::MirrorHorizontal)
    }
}

fn mirror_h(bmp: &Bitmap) -> Bitmap {
    let (w, h) = (bmp.width(), bmp.height());
    let mut out = Bitmap::filled(w, h, [0; 3]);
    for y in 0..h {
        for x in 0..w {
            out.set(w - 1 - x, y, bmp.get(x, y));
        }
    }
    out
}

fn watermark(bmp: &Bitmap, seed: u64) -> Bitmap {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3A7E_12A2_4B5C_99D1);
    let mut out = bmp.clone();
    let y0 = rng.gen_range(0..bmp.height().saturating_sub(6));
    let x0 = rng.gen_range(0..bmp.width() / 2);
    let x1 = (x0 + bmp.width() / 3).min(bmp.width());
    // 50% alpha white strip with a dark tag inside.
    for y in y0..(y0 + 5).min(bmp.height()) {
        for x in x0..x1 {
            let [r, g, b] = out.get(x, y);
            out.set(
                x,
                y,
                [
                    ((r as u16 + 255) / 2) as u8,
                    ((g as u16 + 255) / 2) as u8,
                    ((b as u16 + 255) / 2) as u8,
                ],
            );
        }
    }
    out.fill_rect(x0 + 2, y0 + 2, x1.saturating_sub(2), y0 + 4, [40, 40, 40]);
    out
}

fn brightness(bmp: &Bitmap, delta: i16) -> Bitmap {
    let mut out = bmp.clone();
    for y in 0..bmp.height() {
        for x in 0..bmp.width() {
            let [r, g, b] = bmp.get(x, y);
            let adj = |c: u8| (c as i16 + delta).clamp(0, 255) as u8;
            out.set(x, y, [adj(r), adj(g), adj(b)]);
        }
    }
    out
}

fn noise(bmp: &Bitmap, amplitude: i16, seed: u64) -> Bitmap {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4E01_5E00);
    let mut out = bmp.clone();
    let amp = amplitude.max(1);
    for y in 0..bmp.height() {
        for x in 0..bmp.width() {
            let [r, g, b] = bmp.get(x, y);
            let d = rng.gen_range(-amp..=amp);
            let adj = |c: u8| (c as i16 + d).clamp(0, 255) as u8;
            out.set(x, y, [adj(r), adj(g), adj(b)]);
        }
    }
    out
}

fn crop_margin(bmp: &Bitmap, percent: u8) -> Bitmap {
    let pct = percent.clamp(1, 20) as usize;
    let mx = bmp.width() * pct / 100;
    let my = bmp.height() * pct / 100;
    let w = bmp.width() - 2 * mx;
    let h = bmp.height() - 2 * my;
    let mut cropped = Bitmap::filled(w.max(1), h.max(1), [0; 3]);
    for y in 0..h {
        for x in 0..w {
            cropped.set(x, y, bmp.get(x + mx, y + my));
        }
    }
    cropped.resize(bmp.width(), bmp.height())
}

fn occlusion(bmp: &Bitmap, seed: u64) -> Bitmap {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0CC1_0510);
    let mut out = bmp.clone();
    let y0 = rng.gen_range(4..bmp.height() / 2);
    out.fill_rect(8, y0, bmp.width() - 8, y0 + 4, [5, 5, 5]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ImageClass, ImageSpec};

    fn sample() -> Bitmap {
        ImageSpec::model_photo(ImageClass::ModelNude, 11, 4).render()
    }

    #[test]
    fn identity_is_exact() {
        let b = sample();
        assert_eq!(Transform::Identity.apply(&b), b);
    }

    #[test]
    fn mirror_is_involutive() {
        let b = sample();
        let twice = Transform::MirrorHorizontal.apply(&Transform::MirrorHorizontal.apply(&b));
        assert_eq!(twice, b);
    }

    #[test]
    fn transforms_preserve_dimensions() {
        let b = sample();
        for t in [
            Transform::MirrorHorizontal,
            Transform::Watermark { seed: 3 },
            Transform::Brightness(-30),
            Transform::Noise {
                amplitude: 8,
                seed: 5,
            },
            Transform::CropMargin { percent: 10 },
            Transform::OcclusionBar { seed: 2 },
        ] {
            let out = t.apply(&b);
            assert_eq!(out.width(), b.width(), "{t:?}");
            assert_eq!(out.height(), b.height(), "{t:?}");
        }
    }

    #[test]
    fn transforms_are_deterministic() {
        let b = sample();
        let t = Transform::Noise {
            amplitude: 8,
            seed: 5,
        };
        assert_eq!(t.apply(&b), t.apply(&b));
    }

    #[test]
    fn brightness_clamps_at_bounds() {
        let b = Bitmap::canvas([250; 3]);
        let bright = Transform::Brightness(20).apply(&b);
        assert_eq!(bright.get(0, 0), [255; 3]);
        let dark = Transform::Brightness(-255).apply(&b);
        assert_eq!(dark.get(0, 0), [0; 3]);
    }

    #[test]
    fn watermark_changes_a_limited_region() {
        let b = sample();
        let marked = Transform::Watermark { seed: 1 }.apply(&b);
        let changed = b
            .pixels()
            .iter()
            .zip(marked.pixels())
            .filter(|(a, m)| a != m)
            .count();
        let total = b.pixels().len();
        assert!(changed > 0);
        assert!(
            (changed as f64) < total as f64 * 0.15,
            "watermark touched {changed}/{total} pixels"
        );
    }

    #[test]
    fn only_mirror_reports_defeating_hash() {
        assert!(Transform::MirrorHorizontal.defeats_hash());
        assert!(!Transform::Watermark { seed: 0 }.defeats_hash());
        assert!(!Transform::Identity.defeats_hash());
    }
}
