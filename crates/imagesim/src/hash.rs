//! Robust perceptual hashing (PhotoDNA / TinEye matching analogue).
//!
//! PhotoDNA "leverages Robust Hashing to detect images that have been
//! modified, e.g., using compression algorithms or geometric distortions"
//! (paper §4.3), and TinEye "deals with a broad range of image
//! transformations, including resizing, cropping, edits, occlusions and
//! colour changes" (§4.5). Both are proprietary; this module implements a
//! real 128-bit robust hash with the same qualitative robustness envelope:
//!
//! * **block hash** (64 bits): 8×8 block mean luminances thresholded at
//!   their median — invariant to global brightness shifts and resilient to
//!   per-pixel noise and small occlusions;
//! * **difference hash** (64 bits): horizontal gradients of a 9×8
//!   downsample — captures structure, resilient to resizing.
//!
//! Neither component is mirror-invariant, matching the paper's observation
//! that actors mirror images precisely because it defeats reverse search.

use crate::bitmap::Bitmap;
use serde::{Deserialize, Serialize};

/// Default Hamming threshold for declaring two hashes a match.
///
/// Measured envelope on the synthetic renders (256-bit hash): benign edits
/// (brightness, recompression noise, watermark, resize) stay within ~20
/// bits; unrelated same-class images start around 20; crops sit near 60
/// and mirrors at 130+. 18 accepts almost all benign copies while keeping
/// unrelated matches rare — like a real search engine, the boundary is
/// noisy in both directions.
pub const DEFAULT_MATCH_THRESHOLD: u32 = 18;

/// A 256-bit robust perceptual hash.
///
/// Four 64-bit planes: block-mean luminance, horizontal gradients,
/// vertical gradients, and block chroma (warmth). The extra planes exist
/// for *discrimination*: same-class synthetic renders share gross
/// structure, and 128 bits proved too few to keep lookalikes outside the
/// safety-matching ball.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub struct RobustHash {
    /// Luma block bits, horizontal-gradient bits, vertical-gradient bits,
    /// chroma block bits.
    pub bits: [u64; 4],
}

impl RobustHash {
    /// Computes the hash of a bitmap.
    pub fn of(bmp: &Bitmap) -> RobustHash {
        RobustHash {
            bits: [block_hash(bmp), dhash(bmp), vdhash(bmp), chroma_hash(bmp)],
        }
    }

    /// Hamming distance to another hash (0–256).
    pub fn distance(&self, other: &RobustHash) -> u32 {
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// True when within `threshold` bits of `other`.
    pub fn matches(&self, other: &RobustHash, threshold: u32) -> bool {
        self.distance(other) <= threshold
    }
}

/// Thresholds 64 block means at their median — the shared finisher for
/// the luma and chroma block planes, used by both the per-rect reference
/// and the fused single-pass kernel.
pub(crate) fn median_bits(means: &[f32; 64]) -> u64 {
    let mut sorted = *means;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("block mean is finite"));
    let median = (sorted[31] + sorted[32]) / 2.0;
    let mut bits = 0u64;
    for (i, &m) in means.iter().enumerate() {
        if m > median {
            bits |= 1 << i;
        }
    }
    bits
}

/// Signs of the horizontal gradients of a 9×8 cell grid (dhash plane).
pub(crate) fn dhash_bits(cells: &[[f32; 9]; 8]) -> u64 {
    let mut bits = 0u64;
    let mut i = 0;
    for row in cells {
        for w in row.windows(2) {
            if w[0] < w[1] {
                bits |= 1 << i;
            }
            i += 1;
        }
    }
    bits
}

/// Signs of the vertical gradients of an 8×9 cell grid (vdhash plane).
pub(crate) fn vdhash_bits(cells: &[[f32; 8]; 9]) -> u64 {
    let mut bits = 0u64;
    let mut i = 0;
    for y in 0..8 {
        let (row, next) = (&cells[y], &cells[y + 1]);
        for (a, b) in row.iter().zip(next) {
            if a < b {
                bits |= 1 << i;
            }
            i += 1;
        }
    }
    bits
}

/// 8×8 block-mean hash thresholded at the median.
fn block_hash(bmp: &Bitmap) -> u64 {
    let mut means = [0.0f32; 64];
    let bw = bmp.width().div_ceil(8);
    let bh = bmp.height().div_ceil(8);
    for by in 0..8 {
        for bx in 0..8 {
            means[by * 8 + bx] = bmp.mean_luminance(bx * bw, by * bh, (bx + 1) * bw, (by + 1) * bh);
        }
    }
    median_bits(&means)
}

/// 9×8 difference hash over horizontal gradients of area-averaged cells.
///
/// Averaging each cell (instead of nearest-neighbour point sampling) makes
/// the gradient bits survive per-pixel noise and resampling. Horizontal
/// gradients keep the hash mirror-*sensitive* — flipping an image reverses
/// every gradient sign — which is the behaviour the paper attributes to
/// real reverse-search engines (actors mirror images to evade them).
fn dhash(bmp: &Bitmap) -> u64 {
    let mut cells = [[0.0f32; 9]; 8];
    for (gy, row) in cells.iter_mut().enumerate() {
        let y0 = gy * bmp.height() / 8;
        let y1 = ((gy + 1) * bmp.height() / 8).max(y0 + 1);
        for (gx, cell) in row.iter_mut().enumerate() {
            let x0 = gx * bmp.width() / 9;
            let x1 = ((gx + 1) * bmp.width() / 9).max(x0 + 1);
            *cell = bmp.mean_luminance(x0, y0, x1, y1);
        }
    }
    dhash_bits(&cells)
}

/// 8×9 difference hash over *vertical* gradients of area-averaged cells.
/// Mirror-invariant on its own, but combined with the horizontal plane the
/// full hash stays mirror-sensitive while gaining structure bits.
fn vdhash(bmp: &Bitmap) -> u64 {
    let mut cells = [[0.0f32; 8]; 9];
    for (gy, row) in cells.iter_mut().enumerate() {
        let y0 = gy * bmp.height() / 9;
        let y1 = ((gy + 1) * bmp.height() / 9).max(y0 + 1);
        for (gx, cell) in row.iter_mut().enumerate() {
            let x0 = gx * bmp.width() / 8;
            let x1 = ((gx + 1) * bmp.width() / 8).max(x0 + 1);
            *cell = bmp.mean_luminance(x0, y0, x1, y1);
        }
    }
    vdhash_bits(&cells)
}

/// 8×8 block chroma hash: mean (R − B) per block thresholded at the
/// median. Separates skin/sand warmth layouts that share luminance.
fn chroma_hash(bmp: &Bitmap) -> u64 {
    let mut means = [0.0f32; 64];
    let bw = bmp.width().div_ceil(8);
    let bh = bmp.height().div_ceil(8);
    for by in 0..8 {
        for bx in 0..8 {
            let (x0, y0) = (bx * bw, by * bh);
            let (x1, y1) = (
                ((bx + 1) * bw).min(bmp.width()),
                ((by + 1) * bh).min(bmp.height()),
            );
            if x0 >= x1 || y0 >= y1 {
                continue;
            }
            let mut acc = 0.0f32;
            for y in y0..y1 {
                for x in x0..x1 {
                    let [r, _, b] = bmp.get(x, y);
                    acc += r as f32 - b as f32;
                }
            }
            means[by * 8 + bx] = acc / ((x1 - x0) * (y1 - y0)) as f32;
        }
    }
    median_bits(&means)
}

/// Incremental FNV-1a-64 over bytes — shared by [`content_digest`] and
/// the fused measurement kernel so both mix the identical byte stream.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    #[inline]
    pub(crate) fn mix(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x1000_0000_01B3);
    }
}

/// FNV-1a content digest for *exact* duplicate detection (the §4.2 dedup
/// that found 127 images present in ≥20 packs used byte identity).
pub fn content_digest(bmp: &Bitmap) -> u64 {
    let mut h = Fnv::new();
    h.mix((bmp.width() & 0xFF) as u8);
    h.mix((bmp.height() & 0xFF) as u8);
    for p in bmp.pixels() {
        h.mix(p[0]);
        h.mix(p[1]);
        h.mix(p[2]);
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ImageClass, ImageSpec};
    use crate::transform::Transform;

    fn sample(variant: u64) -> Bitmap {
        ImageSpec::model_photo(ImageClass::ModelNude, variant as u32 + 1, variant).render()
    }

    #[test]
    fn identical_images_have_zero_distance() {
        let a = sample(1);
        assert_eq!(RobustHash::of(&a).distance(&RobustHash::of(&a.clone())), 0);
    }

    #[test]
    fn unrelated_images_are_far_apart() {
        let mut min_d = u32::MAX;
        for i in 0..10u64 {
            for j in (i + 1)..10 {
                let d = RobustHash::of(&sample(i)).distance(&RobustHash::of(&sample(j)));
                min_d = min_d.min(d);
            }
        }
        assert!(
            min_d > DEFAULT_MATCH_THRESHOLD,
            "closest unrelated pair at {min_d} bits"
        );
    }

    #[test]
    fn survives_brightness_shift() {
        for v in 0..10 {
            let orig = sample(v);
            let shifted = Transform::Brightness(25).apply(&orig);
            let d = RobustHash::of(&orig).distance(&RobustHash::of(&shifted));
            assert!(d <= DEFAULT_MATCH_THRESHOLD, "variant {v}: {d} bits");
        }
    }

    #[test]
    fn survives_compression_noise() {
        for v in 0..10 {
            let orig = sample(v);
            let noisy = Transform::Noise {
                amplitude: 8,
                seed: v,
            }
            .apply(&orig);
            let d = RobustHash::of(&orig).distance(&RobustHash::of(&noisy));
            assert!(d <= DEFAULT_MATCH_THRESHOLD, "variant {v}: {d} bits");
        }
    }

    #[test]
    fn survives_watermark() {
        for v in 0..10 {
            let orig = sample(v);
            let marked = Transform::Watermark { seed: v }.apply(&orig);
            let d = RobustHash::of(&orig).distance(&RobustHash::of(&marked));
            assert!(d <= DEFAULT_MATCH_THRESHOLD, "variant {v}: {d} bits");
        }
    }

    #[test]
    fn survives_resize_almost_always() {
        // Nearest-neighbour downsampling is the lossiest benign transform;
        // a small miss rate is acceptable (real engines lose some resized
        // copies too).
        let mut hits = 0;
        for v in 0..10 {
            let orig = sample(v);
            let resized = orig.resize(48, 48);
            let d = RobustHash::of(&orig).distance(&RobustHash::of(&resized));
            if d <= DEFAULT_MATCH_THRESHOLD {
                hits += 1;
            }
        }
        assert!(hits >= 8, "only {hits}/10 resizes matched");
    }

    #[test]
    fn mirroring_defeats_the_hash() {
        // The paper: actors mirror images "to bypass reverse searches".
        let mut defeated = 0;
        for v in 0..10 {
            let orig = sample(v);
            let mirrored = Transform::MirrorHorizontal.apply(&orig);
            if RobustHash::of(&orig).distance(&RobustHash::of(&mirrored)) > DEFAULT_MATCH_THRESHOLD
            {
                defeated += 1;
            }
        }
        assert!(defeated >= 8, "mirror only defeated {defeated}/10 hashes");
    }

    #[test]
    fn content_digest_detects_exact_duplicates_only() {
        let a = sample(1);
        let b = sample(1);
        let c = sample(2);
        assert_eq!(content_digest(&a), content_digest(&b));
        assert_ne!(content_digest(&a), content_digest(&c));
        let shifted = Transform::Brightness(1).apply(&a);
        assert_ne!(content_digest(&a), content_digest(&shifted));
    }
}
