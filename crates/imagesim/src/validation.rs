//! Validation dataset builder (paper §4.4).
//!
//! The paper tunes Algorithm 1 on "a validation dataset of 180 labelled
//! images (including sexual and non-sexual content) released by Lopes et
//! al. \[2\] and a set of 60 images manually retrieved from the web with
//! textual content … and without textual content". This module builds the
//! synthetic equivalent: 240 labelled images with the same composition, so
//! the pipeline's threshold tuning and the reported 100%-recall / ~8%-FP
//! behaviour can be measured the same way.

use crate::spec::{ImageClass, ImageSpec, PaymentPlatform};
use serde::{Deserialize, Serialize};

/// Ground-truth label for a validation image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationLabel {
    /// Contains nudity / depicts a model — must be NSFV.
    Nude,
    /// Non-nude with textual content (documents, bills, screenshots).
    NonNudeTextual,
    /// Non-nude without text (landscapes, game screenshots, people photos).
    NonNudePlain,
}

/// A labelled validation image.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ValidationImage {
    /// The renderable spec.
    pub spec: ImageSpec,
    /// Ground truth.
    pub label: ValidationLabel,
}

/// Builds the 240-image validation set: 180 Lopes-style (90 nude/sexual,
/// 90 non-nude) plus 60 web images (30 textual, 30 plain), deterministic in
/// `seed`.
pub fn build_validation_set(seed: u64) -> Vec<ValidationImage> {
    let mut out = Vec::with_capacity(240);
    let s = |i: u64| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i);

    // 90 nude/sexual (Lopes et al. positive class).
    for i in 0..90u64 {
        let class = if i % 3 == 0 {
            ImageClass::ModelSexual
        } else {
            ImageClass::ModelNude
        };
        out.push(ValidationImage {
            spec: ImageSpec::model_photo(class, 10_000 + i as u32, s(i)),
            label: ValidationLabel::Nude,
        });
    }
    // 90 non-nude (Lopes negative class): clothed people in casual shots,
    // memes, scenery.
    for i in 0..90u64 {
        let class = match i % 9 {
            0..=3 => ImageClass::PortraitCasual,
            4 | 5 => ImageClass::Meme,
            _ => ImageClass::Landscape,
        };
        out.push(ValidationImage {
            spec: ImageSpec::of(class, s(100 + i)),
            label: ValidationLabel::NonNudePlain,
        });
    }
    // 30 textual web images: documents, bills (payment screenshots), chats.
    for i in 0..30u64 {
        let class = match i % 3 {
            0 => ImageClass::Document,
            1 => ImageClass::PaymentScreenshot(PaymentPlatform::PayPal),
            _ => ImageClass::ChatScreenshot,
        };
        out.push(ValidationImage {
            spec: ImageSpec::of(class, s(200 + i)),
            label: ValidationLabel::NonNudeTextual,
        });
    }
    // 30 plain web images: landscapes and game-like scenes.
    for i in 0..30u64 {
        let class = if i % 2 == 0 {
            ImageClass::Landscape
        } else {
            ImageClass::DirectoryThumbnails
        };
        out.push(ValidationImage {
            spec: ImageSpec::of(class, s(300 + i)),
            label: ValidationLabel::NonNudePlain,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_matches_paper() {
        let set = build_validation_set(1);
        assert_eq!(set.len(), 240);
        let nude = set
            .iter()
            .filter(|v| v.label == ValidationLabel::Nude)
            .count();
        let textual = set
            .iter()
            .filter(|v| v.label == ValidationLabel::NonNudeTextual)
            .count();
        assert_eq!(nude, 90);
        assert_eq!(textual, 30);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = build_validation_set(5);
        let b = build_validation_set(5);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.spec == y.spec));
        let c = build_validation_set(6);
        assert!(a.iter().zip(&c).any(|(x, y)| x.spec != y.spec));
    }

    #[test]
    fn all_specs_render() {
        for v in build_validation_set(2).iter().take(24) {
            let _ = v.spec.render();
        }
    }

    #[test]
    fn nude_labels_only_on_model_classes() {
        for v in build_validation_set(3) {
            if v.label == ValidationLabel::Nude {
                assert!(v.spec.class.is_model());
            }
        }
    }
}
