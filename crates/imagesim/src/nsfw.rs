//! Nudity scoring (OpenNSFW analogue).
//!
//! Yahoo's OpenNSFW returns "a probability score of an image containing
//! indecent content" (paper §4.4). The pipeline's Algorithm 1 consumes only
//! that scalar, so this substitute reproduces its *score distribution per
//! image class* rather than its CNN: it measures the fraction of skin-tone
//! pixels and maps it through a logistic calibration chosen so that
//!
//! * text/UI screenshots score ≈ 0 (paper: "non-nude images receive a NSFW
//!   score lower than 30%", screenshots well under the 1% branch);
//! * clothed model photos land in the ambiguous 0.1–0.7 band the paper
//!   reports for "clothed models with high proportion of human body";
//! * nude/sexual photos score far above the 0.3 NSFV threshold;
//! * skin-coloured scenery (beach sand) can leak into the 0.01–0.3 band —
//!   the false-positive mode the paper explicitly discusses.

use crate::bitmap::Bitmap;

/// Skin-tone predicate over RGB. Matches the warm high-red band used by the
/// generators plus a tolerance, wide enough to also catch beach sand — a
/// deliberate property (see module docs).
#[inline]
pub fn is_skin(p: [u8; 3]) -> bool {
    let [r, g, b] = p;
    let (r, g, b) = (r as i32, g as i32, b as i32);
    r > 170
        && g > r * 55 / 100
        && g < r * 92 / 100
        && b > r * 38 / 100
        && b < r * 78 / 100
        && r - b > 40
}

/// Fraction of skin pixels in the bitmap.
pub fn skin_fraction(bmp: &Bitmap) -> f64 {
    bmp.fraction_where(is_skin)
}

/// The NSFW probability score in `[0, 1]`.
///
/// Logistic in skin coverage: `sigma(14 * (skin - 0.40))`. Calibration
/// (see module docs) places coverage 0 at ≈0.004, 0.19 at ≈0.05, 0.33 at
/// ≈0.3, and 0.5+ at ≈0.8+.
pub fn nsfw_score(bmp: &Bitmap) -> f64 {
    nsfw_score_from_fraction(skin_fraction(bmp))
}

/// The logistic calibration applied to a skin fraction — the single
/// shared expression behind [`nsfw_score`] and the fused measurement
/// kernel (both produce bit-identical f64 scores from the same count).
#[inline]
pub fn nsfw_score_from_fraction(f: f64) -> f64 {
    1.0 / (1.0 + (-(f - 0.40) * 14.0).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ImageClass, ImageSpec, PaymentPlatform};

    fn score_of(class: ImageClass, model: u32, variant: u64) -> f64 {
        let spec = if class.is_model() {
            ImageSpec::model_photo(class, model, variant)
        } else {
            ImageSpec::of(class, variant)
        };
        nsfw_score(&spec.render())
    }

    #[test]
    fn nude_and_sexual_exceed_nsfv_threshold() {
        for v in 0..20 {
            assert!(
                score_of(ImageClass::ModelNude, v as u32 + 1, v) > 0.3,
                "nude variant {v}"
            );
            assert!(
                score_of(ImageClass::ModelSexual, v as u32 + 1, v) > 0.3,
                "sexual variant {v}"
            );
        }
    }

    #[test]
    fn payment_screenshots_score_near_zero() {
        for v in 0..20 {
            let s = score_of(
                ImageClass::PaymentScreenshot(PaymentPlatform::AmazonGiftCard),
                0,
                v,
            );
            assert!(s < 0.05, "variant {v} scored {s}");
        }
    }

    #[test]
    fn documents_score_below_001() {
        for v in 0..10 {
            let s = score_of(ImageClass::Document, 0, v);
            assert!(s < 0.01, "variant {v} scored {s}");
        }
    }

    #[test]
    fn dressed_models_land_in_ambiguous_band() {
        // Paper: clothed models score between 10% and 70%.
        let mut in_band = 0;
        let n = 30;
        for v in 0..n {
            let s = score_of(ImageClass::ModelDressed, v as u32 + 1, v);
            if (0.05..0.85).contains(&s) {
                in_band += 1;
            }
        }
        assert!(in_band as f64 / n as f64 > 0.8, "{in_band}/{n} in band");
    }

    #[test]
    fn some_landscapes_are_false_positive_prone() {
        // Beach scenes must sometimes score above the SFV fast-path (0.01):
        // this is the §4.4 false-positive mode we reproduce.
        let mut above = 0;
        for v in 0..60 {
            if score_of(ImageClass::Landscape, 0, v) > 0.01 {
                above += 1;
            }
        }
        // Beach scenes occur in ~18% of landscapes; most of those leak
        // past the SFV fast path (the §4.4 false-positive mode).
        assert!(
            (5..=25).contains(&above),
            "{above}/60 landscapes above 0.01"
        );
    }

    #[test]
    fn skin_predicate_rejects_ui_colors() {
        assert!(!is_skin([255, 255, 255]));
        assert!(!is_skin([0, 48, 135])); // PayPal blue
        assert!(!is_skin([40, 40, 48])); // ink
        assert!(!is_skin([60, 120, 180])); // sea
        assert!(!is_skin([98, 98, 98])); // gray
    }

    #[test]
    fn skin_predicate_accepts_sand() {
        assert!(is_skin([214, 180, 140]), "beach sand must read as skin");
    }

    #[test]
    fn score_is_monotone_in_skin_fraction() {
        use crate::bitmap::Bitmap;
        let empty = Bitmap::canvas([255, 255, 255]);
        let mut half = Bitmap::canvas([255, 255, 255]);
        half.fill_rect(0, 0, 64, 32, [220, 172, 140]);
        let full = Bitmap::canvas([220, 172, 140]);
        let (a, b, c) = (nsfw_score(&empty), nsfw_score(&half), nsfw_score(&full));
        assert!(a < b && b < c, "{a} < {b} < {c}");
    }
}
