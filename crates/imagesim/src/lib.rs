//! Synthetic-image substrate.
//!
//! The paper's pipeline downloads ~115k real images and runs three image
//! classifiers over them: PhotoDNA (robust hash against a child-abuse hash
//! list), Yahoo OpenNSFW (nudity score), and Tesseract (OCR word count).
//! Real imagery is both unavailable and undesirable here, so this crate
//! replaces the *data* while keeping the *algorithms* real:
//!
//! * [`Bitmap`] — small RGB rasters rendered procedurally from a compact
//!   [`ImageSpec`] (class + content seed). Each image class (model photo,
//!   payment screenshot, chat log, landscape, …) renders characteristic
//!   pixel structure: skin-tone regions for model photos, glyph-like text
//!   rows for screenshots, gradients for landscapes.
//! * [`transform`] — the modifications actors apply to bypass reverse
//!   search (paper §4.5): mirroring, watermarks, crops, brightness shifts,
//!   compression-style noise.
//! * [`RobustHash`] — a 128-bit perceptual hash (block-mean + gradient
//!   dHash) with Hamming matching. Like PhotoDNA/TinEye it survives
//!   compression, brightness, and small edits, and like them it is *not*
//!   mirror-invariant — which is exactly why the paper observes actors
//!   mirroring images to evade matching.
//! * [`nsfw_score`] — a skin-coverage scorer calibrated to the paper's
//!   observed bands (non-nude < 0.3, clothed models 0.1–0.7, screenshots
//!   ≈ 0), consumed by the pipeline's Algorithm 1.
//! * [`ocr_word_count`] — a glyph-run detector standing in for Tesseract:
//!   counts dark word-like runs on light rows.
//!
//! Because a spec is ~16 bytes and rendering is deterministic, the hosted
//! web can hold hundreds of thousands of "images" and the pipeline renders
//! them on demand, exactly as a crawler streams downloads.

pub mod bitmap;
pub mod hash;
pub mod measure;
pub mod nsfw;
pub mod ocr;
pub mod spec;
pub mod transform;
pub mod validation;

pub use bitmap::Bitmap;
pub use hash::{content_digest, RobustHash, DEFAULT_MATCH_THRESHOLD};
pub use measure::{measure, measure_with, MeasureScratch, Measures};
pub use nsfw::nsfw_score;
pub use ocr::ocr_word_count;
pub use spec::{ImageClass, ImageSpec, PaymentPlatform};
pub use transform::Transform;
