//! Image specifications and procedural rendering.
//!
//! An [`ImageSpec`] is a ~20-byte description of an image: its class, the
//! model depicted (for pack/preview photos), and a variant seed. Rendering
//! is deterministic, so a spec *is* the image — the synthetic web stores
//! specs and the pipeline renders on demand, like a crawler streaming
//! downloads.
//!
//! Each class renders the pixel structure its downstream classifier keys
//! on; the coverage bands are calibrated against the paper's observations
//! in §4.4 (non-nude NSFW < 0.3; clothed models 0.1–0.7; text images
//! recognised by OCR).

use crate::bitmap::{Bitmap, SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Payment platforms appearing in proof-of-earnings screenshots (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum PaymentPlatform {
    /// PayPal dashboards.
    PayPal,
    /// Amazon Gift Card balances.
    AmazonGiftCard,
    /// Bitcoin wallet screenshots.
    Bitcoin,
    /// Photographs of cash (rendered as a green-banded photo).
    Cash,
}

impl PaymentPlatform {
    /// Header band colour used when rendering the screenshot.
    fn header_color(self) -> [u8; 3] {
        match self {
            PaymentPlatform::PayPal => [0, 48, 135],
            PaymentPlatform::AmazonGiftCard => [255, 153, 0],
            PaymentPlatform::Bitcoin => [247, 147, 26],
            PaymentPlatform::Cash => [40, 90, 40],
        }
    }
}

/// The content class of a synthetic image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum ImageClass {
    /// A clothed ("dressed, normally in a suggestive manner") model photo.
    ModelDressed,
    /// A nude model photo.
    ModelNude,
    /// A sexually explicit photo.
    ModelSexual,
    /// A payment-dashboard screenshot (proof-of-earnings, §5).
    PaymentScreenshot(PaymentPlatform),
    /// A chat-conversation screenshot.
    ChatScreenshot,
    /// A screenshot of pack directories with thumbnails (§4.4 mentions
    /// these among non-preview downloads).
    DirectoryThumbnails,
    /// A "this image was removed" banner.
    ErrorBanner,
    /// A natural landscape (validation-set negative; beach scenes are the
    /// classic skin-tone false positive).
    Landscape,
    /// A clothed person photographed casually — only face and hands show
    /// skin. The validation set's "pictures taken from random people".
    PortraitCasual,
    /// A dense text document.
    Document,
    /// A meme-style image: photo block plus caption rows.
    Meme,
}

impl ImageClass {
    /// True for classes depicting a model (pack/preview content).
    pub fn is_model(self) -> bool {
        matches!(
            self,
            ImageClass::ModelDressed | ImageClass::ModelNude | ImageClass::ModelSexual
        )
    }

    /// True for classes whose content is primarily text.
    pub fn is_textual(self) -> bool {
        matches!(
            self,
            ImageClass::PaymentScreenshot(_)
                | ImageClass::ChatScreenshot
                | ImageClass::ErrorBanner
                | ImageClass::Document
        )
    }
}

/// A compact, renderable image description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ImageSpec {
    /// Content class.
    pub class: ImageClass,
    /// Identity of the depicted model (consistent skin tone / hair across a
    /// pack); 0 for non-model classes.
    pub model: u32,
    /// Per-image variation seed: pose, background, text layout.
    pub variant: u64,
}

impl ImageSpec {
    /// A model photo of `model`.
    pub fn model_photo(class: ImageClass, model: u32, variant: u64) -> ImageSpec {
        assert!(class.is_model(), "class {class:?} is not a model photo");
        ImageSpec {
            class,
            model,
            variant,
        }
    }

    /// A non-model image of `class`.
    pub fn of(class: ImageClass, variant: u64) -> ImageSpec {
        assert!(!class.is_model(), "use model_photo for model classes");
        ImageSpec {
            class,
            model: 0,
            variant,
        }
    }

    /// Deterministic per-spec RNG.
    fn rng(&self) -> StdRng {
        // Mix all identity fields so distinct specs render distinct pixels.
        let tag: u64 = match self.class {
            ImageClass::ModelDressed => 1,
            ImageClass::ModelNude => 2,
            ImageClass::ModelSexual => 3,
            ImageClass::PaymentScreenshot(p) => 10 + p as u64,
            ImageClass::ChatScreenshot => 20,
            ImageClass::DirectoryThumbnails => 21,
            ImageClass::ErrorBanner => 22,
            ImageClass::Landscape => 23,
            ImageClass::Document => 24,
            ImageClass::Meme => 25,
            ImageClass::PortraitCasual => 26,
        };
        let mut s = self
            .variant
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((self.model as u64) << 32)
            .wrapping_add(tag);
        s ^= s >> 31;
        StdRng::seed_from_u64(s)
    }

    /// Renders the spec to pixels.
    pub fn render(&self) -> Bitmap {
        let mut bmp = Bitmap::filled(1, 1, [0; 3]);
        self.render_into(&mut bmp);
        bmp
    }

    /// Renders the spec into an existing bitmap, reusing its allocation —
    /// the render-arena variant of [`ImageSpec::render`]. The output is
    /// identical to a fresh render.
    pub fn render_into(&self, out: &mut Bitmap) {
        let mut rng = self.rng();
        match self.class {
            ImageClass::ModelDressed => render_model(out, &mut rng, self.model, Coverage::Dressed),
            ImageClass::ModelNude => render_model(out, &mut rng, self.model, Coverage::Nude),
            ImageClass::ModelSexual => render_model(out, &mut rng, self.model, Coverage::Sexual),
            ImageClass::PaymentScreenshot(p) => render_payment(out, &mut rng, p),
            ImageClass::ChatScreenshot => render_chat(out, &mut rng),
            ImageClass::DirectoryThumbnails => render_directory(out, &mut rng),
            ImageClass::ErrorBanner => render_error(out, &mut rng),
            ImageClass::Landscape => render_landscape(out, &mut rng),
            ImageClass::Document => render_document(out, &mut rng),
            ImageClass::Meme => render_meme(out, &mut rng),
            ImageClass::PortraitCasual => render_portrait(out, &mut rng),
        }
    }
}

/// Skin tone for a model id: consistent per model, plausibly varied across
/// models, always inside the scorer's skin predicate.
pub(crate) fn skin_tone(model: u32) -> [u8; 3] {
    let mut s = (model as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
    s ^= s >> 33;
    let r = 200 + (s % 40) as u8; // 200..=239
    let g = (r as f32 * 0.72) as u8;
    let b = (r as f32 * 0.55) as u8;
    [r, g, b]
}

enum Coverage {
    Dressed,
    Nude,
    Sexual,
}

fn render_model(bmp: &mut Bitmap, rng: &mut StdRng, model: u32, coverage: Coverage) {
    // Non-skin background: indoor wall / bedsheet hues with a lighting
    // gradient (flat backgrounds would leave many hash blocks tied at the
    // median, making the robust hash needlessly fragile — real photos have
    // lighting falloff).
    // All hues stay above the OCR ink threshold so background texture can
    // never masquerade as glyphs.
    let bg_choices: [[u8; 3]; 4] = [
        [200, 205, 215],
        [185, 185, 200],
        [165, 175, 190],
        [150, 155, 175],
    ];
    let top = bg_choices[rng.gen_range(0..bg_choices.len())];
    let bottom = [
        top[0].saturating_sub(30),
        top[1].saturating_sub(30),
        top[2].saturating_sub(25),
    ];
    bmp.reset(SIZE, SIZE, top);
    bmp.fill_vgradient(top, bottom);

    // Background furniture/props: large non-skin patches at random
    // positions. These give each photo a distinctive block-luminance
    // layout, which is what makes unrelated photos hash far apart (and
    // mirrored copies detectably different).
    let dark_props: [[u8; 3]; 3] = [[52, 56, 72], [72, 62, 62], [42, 47, 52]];
    let light_props: [[u8; 3]; 2] = [[228, 230, 238], [243, 240, 232]];
    for _ in 0..rng.gen_range(2..5) {
        let color = if rng.gen_bool(0.5) {
            dark_props[rng.gen_range(0..dark_props.len())]
        } else {
            light_props[rng.gen_range(0..light_props.len())]
        };
        let x0 = rng.gen_range(0..44);
        let y0 = rng.gen_range(0..44);
        let w = rng.gen_range(18..32);
        let h = rng.gen_range(10..34);
        bmp.fill_rect(x0, y0, x0 + w, y0 + h, color);
    }
    let skin = skin_tone(model);

    // Target exposed-skin fraction by class, jittered per image.
    let target: f64 = match coverage {
        Coverage::Dressed => rng.gen_range(0.34..0.55),
        Coverage::Nude => rng.gen_range(0.50..0.72),
        Coverage::Sexual => rng.gen_range(0.58..0.82),
    };

    // Head.
    let head_r = 6.0 + rng.gen_range(0.0..2.0);
    let cx = 32.0 + rng.gen_range(-12.0..12.0);
    bmp.fill_ellipse(cx, 10.0, head_r, head_r, skin);
    // Hair cap (per-model colour).
    let hair = [
        (model % 150) as u8,
        ((model / 3) % 90) as u8,
        ((model / 7) % 120) as u8,
    ];
    bmp.fill_ellipse(cx, 6.0, head_r, head_r * 0.5, hair);

    // Body: ellipse area sized so total skin ≈ target.
    let total = (SIZE * SIZE) as f64;
    let head_area = std::f64::consts::PI * (head_r * head_r * 0.75) as f64;
    let body_area = (target * total - head_area).max(100.0);
    let ry = 22.0 + rng.gen_range(0.0..4.0);
    let rx = (body_area / (std::f64::consts::PI * ry as f64)) as f32;
    bmp.fill_ellipse(cx, 40.0, rx.min(30.0), ry, skin);

    if matches!(coverage, Coverage::Sexual) {
        // Second body mass partially overlapping.
        let skin2 = skin_tone(model.wrapping_add(7919));
        bmp.fill_ellipse(
            cx + rng.gen_range(-14.0..14.0),
            48.0,
            rx * 0.6,
            ry * 0.7,
            skin2,
        );
    }

    if matches!(coverage, Coverage::Dressed) {
        // Clothing band across the torso hides part of the skin.
        let cloth: [u8; 3] = [
            rng.gen_range(10..120),
            rng.gen_range(10..120),
            rng.gen_range(60..200),
        ];
        let band_top = 32 + rng.gen_range(0..6);
        let band_bot = band_top + rng.gen_range(8..13);
        bmp.fill_rect(0, band_top, SIZE, band_bot, cloth);
    }

    // Directional lighting: random side, strong enough that horizontal
    // hash gradients carry signal (and flip under mirroring).
    let shade = rng.gen_range(0.82..0.90);
    if rng.gen_bool(0.5) {
        bmp.shade_columns(shade, 1.0);
    } else {
        bmp.shade_columns(1.0, shade);
    }
    speckle(bmp, rng, 5);
}

/// Draws glyph-like word runs: dark 2-px-tall dashes on the given rows.
/// Returns the number of words drawn.
#[allow(clippy::too_many_arguments)] // a raster drawing primitive: geometry + style
fn draw_text_rows(
    bmp: &mut Bitmap,
    rng: &mut StdRng,
    x0: usize,
    x1: usize,
    y0: usize,
    rows: usize,
    row_gap: usize,
    ink: [u8; 3],
) -> usize {
    let mut words = 0;
    for r in 0..rows {
        let y = y0 + r * row_gap;
        if y + 1 >= bmp.height() {
            break;
        }
        let mut x = x0 + rng.gen_range(0..3);
        while x + 4 < x1.min(bmp.width()) {
            let w = rng.gen_range(3..9).min(x1 - x);
            bmp.fill_rect(x, y, x + w, y + 2, ink);
            words += 1;
            x += w + rng.gen_range(2..5);
        }
    }
    words
}

fn render_payment(bmp: &mut Bitmap, rng: &mut StdRng, platform: PaymentPlatform) {
    bmp.reset(SIZE, SIZE, [248, 248, 250]);
    bmp.fill_rect(0, 0, SIZE, 8, platform.header_color());
    // Logo text in header.
    draw_text_rows(bmp, rng, 3, 30, 3, 1, 6, [255, 255, 255]);
    // Transaction table: 6–9 rows of amounts and labels.
    let rows = rng.gen_range(6..10);
    draw_text_rows(bmp, rng, 4, 60, 14, rows, 6, [40, 40, 48]);
    // Occasionally a small account avatar with skin pixels.
    if rng.gen_bool(0.3) {
        bmp.fill_ellipse(56.0, 4.0, 3.0, 3.0, skin_tone(rng.gen_range(1..1000)));
    }
    speckle(bmp, rng, 2);
}

fn render_chat(bmp: &mut Bitmap, rng: &mut StdRng) {
    bmp.reset(SIZE, SIZE, [235, 235, 238]);
    let mut y = 4;
    while y + 10 < SIZE {
        let left = rng.gen_bool(0.5);
        let (bx0, bx1) = if left { (8, 44) } else { (20, 56) };
        let bubble = if left {
            [255, 255, 255]
        } else {
            [198, 235, 198]
        };
        bmp.fill_rect(bx0, y, bx1, y + 9, bubble);
        draw_text_rows(bmp, rng, bx0 + 2, bx1 - 2, y + 2, 2, 4, [30, 30, 30]);
        // Avatar circle (sometimes skin-toned).
        let avx = if left { 3.0 } else { 60.0 };
        let av_color = if rng.gen_bool(0.5) {
            skin_tone(rng.gen_range(1..1000))
        } else {
            [100, 120, 200]
        };
        bmp.fill_ellipse(avx, (y + 4) as f32, 2.5, 2.5, av_color);
        y += 12 + rng.gen_range(0..3);
    }
    speckle(bmp, rng, 2);
}

fn render_directory(bmp: &mut Bitmap, rng: &mut StdRng) {
    bmp.reset(SIZE, SIZE, [238, 238, 242]);
    for ty in 0..4 {
        for tx in 0..4 {
            let x0 = 2 + tx * 16;
            let y0 = 2 + ty * 16;
            // Thumbnail tile: some are skin-dominant (they are previews of
            // the pack), some are scenery-coloured.
            let color = if rng.gen_bool(0.35) {
                skin_tone(rng.gen_range(1..1000))
            } else {
                [
                    rng.gen_range(40..200),
                    rng.gen_range(40..200),
                    rng.gen_range(40..220),
                ]
            };
            bmp.fill_rect(x0, y0, x0 + 12, y0 + 9, color);
            // Filename under the tile (dark text on the light canvas so
            // the OCR stage recognises directory listings as textual).
            draw_text_rows(bmp, rng, x0, x0 + 12, y0 + 10, 1, 4, [40, 40, 45]);
        }
    }
    speckle(bmp, rng, 3);
}

fn render_error(bmp: &mut Bitmap, rng: &mut StdRng) {
    bmp.reset(SIZE, SIZE, [230, 230, 230]);
    bmp.fill_rect(6, 22, 58, 42, [245, 245, 245]);
    // "This image violates our Terms of Use …" — two short rows.
    draw_text_rows(bmp, rng, 10, 54, 27, 2, 6, [60, 60, 66]);
}

fn render_landscape(bmp: &mut Bitmap, rng: &mut StdRng) {
    bmp.reset(SIZE, SIZE, [0; 3]);
    bmp.fill_vgradient([120, 170, 235], [200, 220, 245]);
    let horizon = rng.gen_range(40..50);
    if rng.gen_bool(0.18) {
        // Beach: sand reads as skin to a colour classifier.
        let sand = [214, 180, 140];
        bmp.fill_rect(0, horizon, SIZE, SIZE, sand);
        // Sea band above the sand (bright enough not to read as ink).
        bmp.fill_rect(0, horizon.saturating_sub(6), SIZE, horizon, [105, 165, 225]);
    } else {
        let ground = [90 + rng.gen_range(0..30), 150 + rng.gen_range(0..40), 85];
        bmp.fill_rect(0, horizon, SIZE, SIZE, ground);
    }
    // Sun or cloud.
    bmp.fill_ellipse(
        rng.gen_range(8.0..56.0),
        rng.gen_range(6.0..16.0),
        5.0,
        3.0,
        [250, 250, 240],
    );
    let shade = rng.gen_range(0.84..0.92);
    if rng.gen_bool(0.5) {
        bmp.shade_columns(shade, 1.0);
    } else {
        bmp.shade_columns(1.0, shade);
    }
    speckle(bmp, rng, 6);
}

fn render_portrait(bmp: &mut Bitmap, rng: &mut StdRng) {
    // Outdoor/indoor background with gradient, fully-clothed figure, skin
    // visible only on the face and hands (coverage ≈ 2-8%).
    let top = [170 + rng.gen_range(0..40), 180 + rng.gen_range(0..40), 200];
    let bottom = [top[0] - 30, top[1] - 30, top[2] - 20];
    bmp.reset(SIZE, SIZE, top);
    bmp.fill_vgradient(top, bottom);
    let skin = skin_tone(rng.gen_range(1..100_000));
    let cx = 32.0 + rng.gen_range(-8.0..8.0);
    // Face.
    let head_r = 4.5 + rng.gen_range(0.0..2.5);
    bmp.fill_ellipse(cx, 12.0, head_r, head_r, skin);
    // Hair.
    bmp.fill_ellipse(cx, 8.5, head_r + 0.5, head_r * 0.6, [120, 95, 70]);
    // Clothed torso and legs (non-skin colours).
    let shirt: [u8; 3] = [
        rng.gen_range(30..140),
        rng.gen_range(30..140),
        rng.gen_range(60..200),
    ];
    bmp.fill_ellipse(cx, 34.0, 11.0, 14.0, shirt);
    let trousers = [40, 45, 60];
    bmp.fill_rect((cx - 8.0) as usize, 46, (cx + 8.0) as usize, 62, trousers);
    // Hands.
    bmp.fill_ellipse(cx - 11.0, 38.0, 2.0, 2.5, skin);
    bmp.fill_ellipse(cx + 11.0, 38.0, 2.0, 2.5, skin);
    let shade = rng.gen_range(0.84..0.92);
    if rng.gen_bool(0.5) {
        bmp.shade_columns(shade, 1.0);
    } else {
        bmp.shade_columns(1.0, shade);
    }
    speckle(bmp, rng, 4);
}

fn render_document(bmp: &mut Bitmap, rng: &mut StdRng) {
    bmp.reset(SIZE, SIZE, [252, 252, 252]);
    draw_text_rows(bmp, rng, 4, 60, 6, 10, 6, [30, 30, 30]);
    speckle(bmp, rng, 1);
}

fn render_meme(bmp: &mut Bitmap, rng: &mut StdRng) {
    bmp.reset(SIZE, SIZE, [255, 255, 255]);
    // Photo block in the middle with arbitrary (non-skin) colours.
    bmp.fill_rect(
        0,
        12,
        SIZE,
        52,
        [
            rng.gen_range(30..160),
            rng.gen_range(60..180),
            rng.gen_range(90..220),
        ],
    );
    bmp.fill_ellipse(32.0, 32.0, 14.0, 10.0, [240, 230, 80]);
    // Caption rows top and bottom.
    draw_text_rows(bmp, rng, 6, 58, 3, 1, 6, [10, 10, 10]);
    draw_text_rows(bmp, rng, 6, 58, 56, 1, 6, [10, 10, 10]);
    speckle(bmp, rng, 4);
}

/// Adds deterministic per-pixel jitter so images are textured rather than
/// flat (block hashing must tolerate this).
fn speckle(bmp: &mut Bitmap, rng: &mut StdRng, amplitude: i16) {
    if amplitude == 0 {
        return;
    }
    // Pixel storage is row-major, so this flat walk draws from the RNG in
    // exactly the per-(y, x) order the nested loops did.
    for p in bmp.pixels_mut() {
        let d = rng.gen_range(-amplitude..=amplitude);
        let adj = |c: u8| (c as i16 + d).clamp(0, 255) as u8;
        *p = [adj(p[0]), adj(p[1]), adj(p[2])];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsfw::is_skin;

    #[test]
    fn rendering_is_deterministic() {
        let spec = ImageSpec::model_photo(ImageClass::ModelNude, 42, 7);
        assert_eq!(spec.render(), spec.render());
    }

    #[test]
    fn render_into_reused_buffer_matches_fresh_render() {
        let mut buf = Bitmap::filled(1, 1, [0; 3]);
        for spec in [
            ImageSpec::model_photo(ImageClass::ModelSexual, 9, 4),
            ImageSpec::of(ImageClass::Document, 2),
            ImageSpec::of(ImageClass::Landscape, 5),
            ImageSpec::of(ImageClass::ChatScreenshot, 1),
        ] {
            spec.render_into(&mut buf);
            assert_eq!(buf, spec.render(), "{spec:?}");
        }
    }

    #[test]
    fn different_variants_render_differently() {
        let a = ImageSpec::model_photo(ImageClass::ModelNude, 42, 1).render();
        let b = ImageSpec::model_photo(ImageClass::ModelNude, 42, 2).render();
        assert_ne!(a, b);
    }

    #[test]
    fn skin_tone_is_consistent_and_skin_like() {
        for model in [1u32, 17, 999, 123_456] {
            let tone = skin_tone(model);
            assert_eq!(tone, skin_tone(model));
            assert!(is_skin(tone), "tone {tone:?} must satisfy skin predicate");
        }
    }

    #[test]
    fn nude_has_more_skin_than_dressed() {
        let mut nude_sum = 0.0;
        let mut dressed_sum = 0.0;
        for v in 0..10 {
            let nude = ImageSpec::model_photo(ImageClass::ModelNude, 5, v).render();
            let dressed = ImageSpec::model_photo(ImageClass::ModelDressed, 5, v).render();
            nude_sum += nude.fraction_where(is_skin);
            dressed_sum += dressed.fraction_where(is_skin);
        }
        assert!(
            nude_sum > dressed_sum + 1.0,
            "nude {nude_sum} vs dressed {dressed_sum}"
        );
    }

    #[test]
    fn screenshots_have_negligible_skin() {
        let spec = ImageSpec::of(ImageClass::PaymentScreenshot(PaymentPlatform::PayPal), 3);
        let f = spec.render().fraction_where(is_skin);
        assert!(f < 0.05, "payment screenshot skin fraction {f}");
    }

    #[test]
    fn class_predicates() {
        assert!(ImageClass::ModelNude.is_model());
        assert!(!ImageClass::Landscape.is_model());
        assert!(ImageClass::Document.is_textual());
        assert!(!ImageClass::ModelDressed.is_textual());
    }

    #[test]
    #[should_panic(expected = "not a model photo")]
    fn model_photo_rejects_non_model_class() {
        let _ = ImageSpec::model_photo(ImageClass::Landscape, 1, 1);
    }

    #[test]
    #[should_panic(expected = "use model_photo")]
    fn of_rejects_model_class() {
        let _ = ImageSpec::of(ImageClass::ModelNude, 1);
    }

    #[test]
    fn every_class_renders_without_panic() {
        let classes = [
            ImageClass::PaymentScreenshot(PaymentPlatform::PayPal),
            ImageClass::PaymentScreenshot(PaymentPlatform::AmazonGiftCard),
            ImageClass::PaymentScreenshot(PaymentPlatform::Bitcoin),
            ImageClass::PaymentScreenshot(PaymentPlatform::Cash),
            ImageClass::ChatScreenshot,
            ImageClass::DirectoryThumbnails,
            ImageClass::ErrorBanner,
            ImageClass::Landscape,
            ImageClass::Document,
            ImageClass::Meme,
        ];
        for c in classes {
            let bmp = ImageSpec::of(c, 9).render();
            assert_eq!(bmp.width(), SIZE);
        }
        for c in [
            ImageClass::ModelDressed,
            ImageClass::ModelNude,
            ImageClass::ModelSexual,
        ] {
            let bmp = ImageSpec::model_photo(c, 3, 9).render();
            assert_eq!(bmp.height(), SIZE);
        }
    }
}
