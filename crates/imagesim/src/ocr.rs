//! OCR word counting (Tesseract analogue).
//!
//! The pipeline's Algorithm 1 consumes Tesseract's output only as "the
//! number of words recognised in an image" (paper §4.4). This module
//! implements a real glyph detector over the synthetic rasters: it finds
//! connected dark components on light background and counts those with
//! word-like geometry. Screenshots and documents yield tens of words;
//! photos and landscapes yield nearly none.

use crate::bitmap::Bitmap;

/// Luminance below which a pixel counts as ink.
const INK_THRESHOLD: f32 = 80.0;
/// Local background must be at least this bright for a component to count
/// as text (ink on dark photos is not text).
const BG_THRESHOLD: f32 = 150.0;
/// Word-geometry limits (canonical 64×64 canvas).
const MAX_WORD_WIDTH: usize = 16;
const MAX_WORD_HEIGHT: usize = 3;
const MIN_WORD_WIDTH: usize = 2;

#[derive(Debug, Clone, Copy)]
struct Run {
    y: usize,
    x0: usize,
    x1: usize, // inclusive
    component: usize,
}

/// Counts word-like components: connected dark runs on a light local
/// background, between `MIN_WORD_WIDTH` and `MAX_WORD_WIDTH` wide and at
/// most `MAX_WORD_HEIGHT` tall.
pub fn ocr_word_count(bmp: &Bitmap) -> usize {
    // 1. Extract horizontal ink runs per row.
    let mut runs: Vec<Run> = Vec::new();
    for y in 0..bmp.height() {
        let mut x = 0;
        while x < bmp.width() {
            if bmp.luminance(x, y) < INK_THRESHOLD {
                let x0 = x;
                while x < bmp.width() && bmp.luminance(x, y) < INK_THRESHOLD {
                    x += 1;
                }
                runs.push(Run {
                    y,
                    x0,
                    x1: x - 1,
                    component: usize::MAX,
                });
            } else {
                x += 1;
            }
        }
    }
    if runs.is_empty() {
        return 0;
    }

    // 2. Union-find over vertically adjacent, horizontally overlapping runs.
    let mut parent: Vec<usize> = (0..runs.len()).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut i = i;
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    // Runs are produced in row order; link each run to overlapping runs of
    // the previous row with a sliding window.
    let mut prev_row_start = 0;
    let mut row_start = 0;
    #[allow(clippy::needless_range_loop)] // i indexes both runs and a sliding window
    for i in 0..runs.len() {
        if i > 0 && runs[i].y != runs[i - 1].y {
            prev_row_start = row_start;
            row_start = i;
        }
        if runs[i].y == 0 {
            continue;
        }
        for j in prev_row_start..row_start {
            if runs[j].y + 1 != runs[i].y {
                continue;
            }
            let overlap = runs[j].x0 <= runs[i].x1 && runs[i].x0 <= runs[j].x1;
            if overlap {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    for (i, run) in runs.iter_mut().enumerate() {
        run.component = find(&mut parent, i);
    }

    // 3. Aggregate component bounding boxes.
    use std::collections::HashMap;
    struct BBox {
        x0: usize,
        x1: usize,
        y0: usize,
        y1: usize,
    }
    let mut boxes: HashMap<usize, BBox> = HashMap::new();
    for r in &runs {
        let e = boxes.entry(r.component).or_insert(BBox {
            x0: r.x0,
            x1: r.x1,
            y0: r.y,
            y1: r.y,
        });
        e.x0 = e.x0.min(r.x0);
        e.x1 = e.x1.max(r.x1);
        e.y0 = e.y0.min(r.y);
        e.y1 = e.y1.max(r.y);
    }

    // 4. Count word-shaped components with light surroundings.
    boxes
        .values()
        .filter(|b| {
            let w = b.x1 - b.x0 + 1;
            let h = b.y1 - b.y0 + 1;
            if !(MIN_WORD_WIDTH..=MAX_WORD_WIDTH).contains(&w) || h > MAX_WORD_HEIGHT {
                return false;
            }
            // Local background: a margin ring around the box must be light.
            let mx0 = b.x0.saturating_sub(2);
            let my0 = b.y0.saturating_sub(2);
            let ring = bmp.mean_luminance(mx0, my0, b.x1 + 3, b.y1 + 3);
            ring > BG_THRESHOLD * 0.72 // box mean includes the ink itself
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ImageClass, ImageSpec, PaymentPlatform};

    fn words_of(class: ImageClass, model: u32, variant: u64) -> usize {
        let spec = if class.is_model() {
            ImageSpec::model_photo(class, model, variant)
        } else {
            ImageSpec::of(class, variant)
        };
        ocr_word_count(&spec.render())
    }

    #[test]
    fn documents_yield_many_words() {
        for v in 0..10 {
            let w = words_of(ImageClass::Document, 0, v);
            assert!(w > 20, "document variant {v}: {w} words");
        }
    }

    #[test]
    fn payment_screenshots_exceed_algorithm1_thresholds() {
        for v in 0..20 {
            let w = words_of(ImageClass::PaymentScreenshot(PaymentPlatform::PayPal), 0, v);
            assert!(w > 20, "payment variant {v}: {w} words");
        }
    }

    #[test]
    fn chat_screenshots_have_words() {
        for v in 0..10 {
            let w = words_of(ImageClass::ChatScreenshot, 0, v);
            assert!(w > 10, "chat variant {v}: {w} words");
        }
    }

    #[test]
    fn model_photos_yield_few_words() {
        for v in 0..10 {
            for class in [
                ImageClass::ModelDressed,
                ImageClass::ModelNude,
                ImageClass::ModelSexual,
            ] {
                let w = words_of(class, v as u32 + 1, v);
                assert!(w <= 10, "{class:?} variant {v}: {w} words");
            }
        }
    }

    #[test]
    fn landscapes_yield_almost_no_words() {
        for v in 0..10 {
            let w = words_of(ImageClass::Landscape, 0, v);
            assert!(w <= 5, "landscape variant {v}: {w} words");
        }
    }

    #[test]
    fn blank_canvas_has_zero_words() {
        use crate::bitmap::Bitmap;
        assert_eq!(ocr_word_count(&Bitmap::canvas([255; 3])), 0);
        assert_eq!(ocr_word_count(&Bitmap::canvas([0; 3])), 0); // dark, no bg
    }

    #[test]
    fn single_word_is_counted_once() {
        use crate::bitmap::Bitmap;
        let mut b = Bitmap::canvas([255; 3]);
        b.fill_rect(10, 10, 16, 12, [0; 3]);
        assert_eq!(ocr_word_count(&b), 1);
    }

    #[test]
    fn ink_on_dark_background_is_not_text() {
        use crate::bitmap::Bitmap;
        let mut b = Bitmap::canvas([60; 3]);
        b.fill_rect(10, 10, 16, 12, [0; 3]);
        assert_eq!(ocr_word_count(&b), 0);
    }
}
