//! OCR word counting (Tesseract analogue).
//!
//! The pipeline's Algorithm 1 consumes Tesseract's output only as "the
//! number of words recognised in an image" (paper §4.4). This module
//! implements a real glyph detector over the synthetic rasters: it finds
//! connected dark components on light background and counts those with
//! word-like geometry. Screenshots and documents yield tens of words;
//! photos and landscapes yield nearly none.

use crate::bitmap::Bitmap;

/// Luminance below which a pixel counts as ink.
const INK_THRESHOLD: f32 = 80.0;
/// Local background must be at least this bright for a component to count
/// as text (ink on dark photos is not text).
const BG_THRESHOLD: f32 = 150.0;
/// Word-geometry limits (canonical 64×64 canvas).
const MAX_WORD_WIDTH: usize = 16;
const MAX_WORD_HEIGHT: usize = 3;
const MIN_WORD_WIDTH: usize = 2;

/// A maximal horizontal span of ink pixels in one row (`x1` inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Run {
    pub(crate) y: usize,
    pub(crate) x0: usize,
    pub(crate) x1: usize,
}

/// Appends this row's ink runs (luminance below [`INK_THRESHOLD`]) to
/// `runs`, given the row's already-computed per-pixel luminances. Each
/// pixel's luminance is evaluated exactly once by the caller — the old
/// extraction loop recomputed `bmp.luminance` in both its `if` and its
/// inner `while`, scanning every ink pixel twice.
#[inline]
pub(crate) fn row_runs_into(y: usize, row_lum: &[f32], runs: &mut Vec<Run>) {
    let mut start: Option<usize> = None;
    for (x, &l) in row_lum.iter().enumerate() {
        if l < INK_THRESHOLD {
            start.get_or_insert(x);
        } else if let Some(x0) = start.take() {
            runs.push(Run { y, x0, x1: x - 1 });
        }
    }
    if let Some(x0) = start {
        runs.push(Run {
            y,
            x0,
            x1: row_lum.len() - 1,
        });
    }
}

/// Extracts every row's ink runs into `runs` (cleared first).
pub(crate) fn collect_runs_into(bmp: &Bitmap, runs: &mut Vec<Run>) {
    runs.clear();
    let mut row_lum = vec![0.0f32; bmp.width()];
    for y in 0..bmp.height() {
        for (l, &p) in row_lum.iter_mut().zip(bmp.row(y)) {
            *l = crate::bitmap::lum(p);
        }
        row_runs_into(y, &row_lum, runs);
    }
}

/// Counts word-like components among pre-extracted ink runs: connected
/// runs on a light local background, between `MIN_WORD_WIDTH` and
/// `MAX_WORD_WIDTH` wide and at most `MAX_WORD_HEIGHT` tall. `runs` must
/// be in row order, as [`collect_runs_into`] produces them.
pub(crate) fn count_words(bmp: &Bitmap, runs: &[Run]) -> usize {
    if runs.is_empty() {
        return 0;
    }

    // 1. Union-find over vertically adjacent, horizontally overlapping runs.
    let mut parent: Vec<usize> = (0..runs.len()).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut i = i;
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    // Runs arrive in row order; link each run to overlapping runs of the
    // previous row with a sliding window.
    let mut prev_row_start = 0;
    let mut row_start = 0;
    #[allow(clippy::needless_range_loop)] // i indexes both runs and a sliding window
    for i in 0..runs.len() {
        if i > 0 && runs[i].y != runs[i - 1].y {
            prev_row_start = row_start;
            row_start = i;
        }
        if runs[i].y == 0 {
            continue;
        }
        for j in prev_row_start..row_start {
            if runs[j].y + 1 != runs[i].y {
                continue;
            }
            let overlap = runs[j].x0 <= runs[i].x1 && runs[i].x0 <= runs[j].x1;
            if overlap {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }

    // 2. Aggregate component bounding boxes.
    use std::collections::HashMap;
    struct BBox {
        x0: usize,
        x1: usize,
        y0: usize,
        y1: usize,
    }
    let mut boxes: HashMap<usize, BBox> = HashMap::new();
    for (i, r) in runs.iter().enumerate() {
        let component = find(&mut parent, i);
        let e = boxes.entry(component).or_insert(BBox {
            x0: r.x0,
            x1: r.x1,
            y0: r.y,
            y1: r.y,
        });
        e.x0 = e.x0.min(r.x0);
        e.x1 = e.x1.max(r.x1);
        e.y0 = e.y0.min(r.y);
        e.y1 = e.y1.max(r.y);
    }

    // 3. Count word-shaped components with light surroundings.
    boxes
        .values()
        .filter(|b| {
            let w = b.x1 - b.x0 + 1;
            let h = b.y1 - b.y0 + 1;
            if !(MIN_WORD_WIDTH..=MAX_WORD_WIDTH).contains(&w) || h > MAX_WORD_HEIGHT {
                return false;
            }
            // Local background: a margin ring around the box must be light.
            let mx0 = b.x0.saturating_sub(2);
            let my0 = b.y0.saturating_sub(2);
            let ring = bmp.mean_luminance(mx0, my0, b.x1 + 3, b.y1 + 3);
            ring > BG_THRESHOLD * 0.72 // box mean includes the ink itself
        })
        .count()
}

/// Counts word-like components: connected dark runs on a light local
/// background, between `MIN_WORD_WIDTH` and `MAX_WORD_WIDTH` wide and at
/// most `MAX_WORD_HEIGHT` tall.
pub fn ocr_word_count(bmp: &Bitmap) -> usize {
    let mut runs = Vec::new();
    collect_runs_into(bmp, &mut runs);
    count_words(bmp, &runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ImageClass, ImageSpec, PaymentPlatform};

    fn words_of(class: ImageClass, model: u32, variant: u64) -> usize {
        let spec = if class.is_model() {
            ImageSpec::model_photo(class, model, variant)
        } else {
            ImageSpec::of(class, variant)
        };
        ocr_word_count(&spec.render())
    }

    #[test]
    fn documents_yield_many_words() {
        for v in 0..10 {
            let w = words_of(ImageClass::Document, 0, v);
            assert!(w > 20, "document variant {v}: {w} words");
        }
    }

    #[test]
    fn payment_screenshots_exceed_algorithm1_thresholds() {
        for v in 0..20 {
            let w = words_of(ImageClass::PaymentScreenshot(PaymentPlatform::PayPal), 0, v);
            assert!(w > 20, "payment variant {v}: {w} words");
        }
    }

    #[test]
    fn chat_screenshots_have_words() {
        for v in 0..10 {
            let w = words_of(ImageClass::ChatScreenshot, 0, v);
            assert!(w > 10, "chat variant {v}: {w} words");
        }
    }

    #[test]
    fn model_photos_yield_few_words() {
        for v in 0..10 {
            for class in [
                ImageClass::ModelDressed,
                ImageClass::ModelNude,
                ImageClass::ModelSexual,
            ] {
                let w = words_of(class, v as u32 + 1, v);
                assert!(w <= 10, "{class:?} variant {v}: {w} words");
            }
        }
    }

    #[test]
    fn landscapes_yield_almost_no_words() {
        for v in 0..10 {
            let w = words_of(ImageClass::Landscape, 0, v);
            assert!(w <= 5, "landscape variant {v}: {w} words");
        }
    }

    /// Pins exact run boundaries, including a run touching the right
    /// edge — the case the end-of-row flush exists for — and verifies
    /// each pixel's luminance is consulted exactly once per scan.
    #[test]
    fn run_extraction_pins_boundaries_and_scans_each_pixel_once() {
        use crate::bitmap::Bitmap;
        let mut b = Bitmap::filled(10, 3, [255; 3]);
        // Row 0: ink at [2,4] and an isolated pixel at 7.
        for x in 2..=4 {
            b.set(x, 0, [0; 3]);
        }
        b.set(7, 0, [0; 3]);
        // Row 2: ink at [6,9], running into the right edge.
        for x in 6..=9 {
            b.set(x, 2, [0; 3]);
        }
        let mut runs = Vec::new();
        collect_runs_into(&b, &mut runs);
        assert_eq!(
            runs,
            vec![
                Run { y: 0, x0: 2, x1: 4 },
                Run { y: 0, x0: 7, x1: 7 },
                Run { y: 2, x0: 6, x1: 9 },
            ]
        );

        // Degenerate rows: all ink (one full-width run) and no ink.
        let mut pinned = Vec::new();
        row_runs_into(5, &[0.0; 4], &mut pinned);
        assert_eq!(pinned, vec![Run { y: 5, x0: 0, x1: 3 }]);
        pinned.clear();
        row_runs_into(6, &[255.0; 4], &mut pinned);
        assert!(pinned.is_empty());
    }

    #[test]
    fn blank_canvas_has_zero_words() {
        use crate::bitmap::Bitmap;
        assert_eq!(ocr_word_count(&Bitmap::canvas([255; 3])), 0);
        assert_eq!(ocr_word_count(&Bitmap::canvas([0; 3])), 0); // dark, no bg
    }

    #[test]
    fn single_word_is_counted_once() {
        use crate::bitmap::Bitmap;
        let mut b = Bitmap::canvas([255; 3]);
        b.fill_rect(10, 10, 16, 12, [0; 3]);
        assert_eq!(ocr_word_count(&b), 1);
    }

    #[test]
    fn ink_on_dark_background_is_not_text() {
        use crate::bitmap::Bitmap;
        let mut b = Bitmap::canvas([60; 3]);
        b.fill_rect(10, 10, 16, 12, [0; 3]);
        assert_eq!(ocr_word_count(&b), 0);
    }
}
