//! Property tests over the reverse-search substrate.

use imagesim::{ImageClass, ImageSpec, RobustHash};
use proptest::prelude::*;
use revsearch::{ClassifierKind, DomainClassifier, IndexedImage, ReverseIndex, Wayback};
use synthrand::Day;
use websim::{DomainCategory, OriginDomain};

fn hash_of(model: u32, variant: u64) -> RobustHash {
    RobustHash::of(&ImageSpec::model_photo(ImageClass::ModelNude, model.max(1), variant).render())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Query results are sorted by ascending distance and respect the
    /// threshold, for arbitrary index contents.
    #[test]
    fn query_results_sorted_and_thresholded(
        entries in prop::collection::vec((1u32..60, 0u64..60), 1..24),
        probe_model in 1u32..60,
        probe_variant in 0u64..60,
        threshold in 0u32..64,
    ) {
        let mut index = ReverseIndex::new();
        for (i, &(m, v)) in entries.iter().enumerate() {
            index.add(IndexedImage {
                hash: hash_of(m, v),
                domain: i as u32,
                url: format!("https://d{i}.example/x"),
                crawled: Day::from_ymd(2012, 1, 1),
            });
        }
        let probe = hash_of(probe_model, probe_variant);
        let hits = index.query_with_threshold(&probe, threshold);
        let mut last = f64::INFINITY;
        for h in &hits {
            prop_assert!(h.similarity <= last);
            last = h.similarity;
            let d = (1.0 - h.similarity) * 256.0;
            prop_assert!(d.round() as u32 <= threshold);
        }
        // An exact copy in the index is always found, whatever else is.
        if entries.contains(&(probe_model, probe_variant)) {
            prop_assert!(!hits.is_empty());
            prop_assert!((hits[0].similarity - 1.0).abs() < 1e-9);
        }
    }

    /// Wayback's earliest snapshot is the minimum of everything recorded.
    #[test]
    fn wayback_first_is_minimum(days in prop::collection::vec(0u32..8000, 1..20)) {
        let mut wb = Wayback::new();
        for &d in &days {
            wb.record("u", Day(d));
        }
        let min = Day(*days.iter().min().unwrap());
        prop_assert_eq!(wb.first_snapshot("u"), Some(min));
        prop_assert!(wb.seen_before("u", Day(min.0 + 1)));
        prop_assert!(!wb.seen_before("u", min));
    }

    /// Domain classification is deterministic and always returns at least
    /// one tag, for every category and classifier.
    #[test]
    fn classification_total_and_stable(
        cat_idx in 0usize..13,
        name_seed in 0u64..10_000,
    ) {
        let (category, _) = DomainCategory::WEIGHTED[cat_idx % DomainCategory::WEIGHTED.len()];
        let domain = OriginDomain {
            name: format!("{}{name_seed}.example", category.slug()),
            category,
            first_crawled: Day::from_ymd(2010, 1, 1),
        };
        for kind in ClassifierKind::ALL {
            let c = DomainClassifier::new(kind);
            let a = c.classify(&domain);
            let b = c.classify(&domain);
            prop_assert_eq!(&a, &b);
            prop_assert!(!a.is_empty());
        }
    }
}
