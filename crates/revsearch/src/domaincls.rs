//! Commercial domain classifiers (OpenDNS / McAfee / VirusTotal analogues).
//!
//! Paper §4.5 tags the provenance domains with three services and reports
//! (Table 6) per-classifier tag distributions with three characteristic
//! imperfections, all reproduced here:
//!
//! * **distinct vocabularies** — e.g. McAfee's "Provocative Attire" vs
//!   OpenDNS's "Lingerie/Bikini" vs VirusTotal's lower-case "adult content";
//! * **multi-tagging** — "a domain classifier can provide more than one tag
//!   per domain" (VirusTotal tags porn sites `adult content` + `porn` +
//!   `sex`);
//! * **`no_result` gaps** — "the lack of classification for some domains,
//!   which is quite large in the case of OpenDNS (22%)", plus occasional
//!   outright misclassification.
//!
//! Classification is deterministic per (classifier, domain name): the noise
//! stream is seeded from a hash of the name, so repeated queries agree.

use serde::{Deserialize, Serialize};
use websim::{DomainCategory, OriginDomain};

/// Which commercial classifier to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassifierKind {
    /// McAfee URL ticketing system.
    McAfee,
    /// VirusTotal URL reputation.
    VirusTotal,
    /// Cisco OpenDNS domain tagging.
    OpenDns,
}

impl ClassifierKind {
    /// All three, in Table 6 column order.
    pub const ALL: [ClassifierKind; 3] = [
        ClassifierKind::McAfee,
        ClassifierKind::VirusTotal,
        ClassifierKind::OpenDns,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            ClassifierKind::McAfee => "McAfee",
            ClassifierKind::VirusTotal => "VirusTotal",
            ClassifierKind::OpenDns => "OpenDNS",
        }
    }

    /// Per-domain probability of returning `no_result`.
    fn no_result_rate(self) -> f64 {
        match self {
            ClassifierKind::McAfee => 0.06,
            ClassifierKind::VirusTotal => 0.18, // uncategorised + no_result
            ClassifierKind::OpenDns => 0.22,    // paper: "quite large (22%)"
        }
    }

    /// Per-domain probability of tagging a *wrong* category (taken uniform
    /// over the other categories).
    fn confusion_rate(self) -> f64 {
        match self {
            ClassifierKind::McAfee => 0.08,
            ClassifierKind::VirusTotal => 0.10,
            ClassifierKind::OpenDns => 0.07,
        }
    }

    /// The tag(s) this classifier emits for a ground-truth category.
    fn tags_for(self, category: DomainCategory) -> &'static [&'static str] {
        use ClassifierKind::*;
        use DomainCategory::*;
        match (self, category) {
            (McAfee, Porn) => &["Pornography"],
            (McAfee, Adult) => &["Provocative Attire", "Nudity"],
            (McAfee, SocialNetwork) => &["Social Networking"],
            (McAfee, Blog) => &["Blogs/Wiki"],
            (McAfee, PhotoSharing) => &["Media Sharing"],
            (McAfee, Forum) => &["Forum/Bulletin Boards"],
            (McAfee, Shopping) => &["Online Shopping", "Marketing/Merchandising"],
            (McAfee, News) => &["General News"],
            (McAfee, Dating) => &["Dating/Personals"],
            (McAfee, Entertainment) => &["Entertainment", "Games", "Humor/Comics"],
            (McAfee, Business) => &["Business", "Internet Services", "Portal Sites"],
            (McAfee, Parked) => &["Parked Domain"],
            (McAfee, Malicious) => &["Malicious Sites", "PUPs", "Illegal Software"],
            (VirusTotal, Porn) => &["porn", "adult content", "sex"],
            (VirusTotal, Adult) => &["adult content", "sex"],
            (VirusTotal, SocialNetwork) => &["social networking"],
            (VirusTotal, Blog) => &["blogs"],
            (VirusTotal, PhotoSharing) => &["entertainment", "information technology"],
            (VirusTotal, Forum) => &["message boards and forums"],
            (VirusTotal, Shopping) => &["shopping", "onlineshop"],
            (VirusTotal, News) => &["news", "news and media"],
            (VirusTotal, Dating) => &["onlinedating"],
            (VirusTotal, Entertainment) => &["entertainment", "games", "sports"],
            (VirusTotal, Business) => {
                &["business", "business and economy", "computers and software"]
            }
            (VirusTotal, Parked) => &["parked"],
            (VirusTotal, Malicious) => &["information technology", "marketing"],
            (OpenDns, Porn) => &["Pornography", "Nudity"],
            (OpenDns, Adult) => &["Adult Themes", "Lingerie/Bikini", "Sexuality"],
            (OpenDns, SocialNetwork) => &["Social Networking"],
            (OpenDns, Blog) => &["Blogs"],
            (OpenDns, PhotoSharing) => &["Photo Sharing"],
            (OpenDns, Forum) => &["Forums/Message boards"],
            (OpenDns, Shopping) => &["Ecommerce/Shopping"],
            (OpenDns, News) => &["News/Media"],
            (OpenDns, Dating) => &["Dating"],
            (OpenDns, Entertainment) => &["Entertainment"],
            (OpenDns, Business) => &["Business Services"],
            (OpenDns, Parked) => &["Parked Domain"],
            (OpenDns, Malicious) => &["Malware"],
        }
    }
}

/// A deterministic emulated classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainClassifier {
    /// Which service this instance emulates.
    pub kind: ClassifierKind,
}

/// The tag string used for unclassified domains (Table 6 lists `no_result`
/// as a distribution row).
pub const NO_RESULT: &str = "no_result";

impl DomainClassifier {
    /// Creates a classifier of `kind`.
    pub fn new(kind: ClassifierKind) -> DomainClassifier {
        DomainClassifier { kind }
    }

    /// Classifies a domain into one or more tags, or `[no_result]`.
    ///
    /// Deterministic: the noise draw is a hash of (kind, domain name).
    pub fn classify(&self, domain: &OriginDomain) -> Vec<&'static str> {
        let u = unit_hash(self.kind, &domain.name);
        if u < self.kind.no_result_rate() {
            return vec![NO_RESULT];
        }
        let confused = u > 1.0 - self.kind.confusion_rate();
        let category = if confused {
            // Pick a different category, deterministically.
            let cats = DomainCategory::WEIGHTED;
            let pick = (u * 7919.0) as usize % cats.len();
            let c = cats[pick].0;
            if c == domain.category {
                cats[(pick + 1) % cats.len()].0
            } else {
                c
            }
        } else {
            domain.category
        };
        let tags = self.kind.tags_for(category);
        // Multi-tagging: always the primary tag; secondary tags join with
        // probability decided by further hash bits.
        let mut out = vec![tags[0]];
        for (i, &t) in tags.iter().enumerate().skip(1) {
            let v = unit_hash(self.kind, &format!("{}#{i}", domain.name));
            if v < 0.6 {
                out.push(t);
            }
        }
        out
    }
}

/// Deterministic uniform-ish value in `[0, 1)` from (kind, text).
fn unit_hash(kind: ClassifierKind, text: &str) -> f64 {
    let mut h: u64 = match kind {
        ClassifierKind::McAfee => 0x9AE1_6A3B_2F90_404F,
        ClassifierKind::VirusTotal => 0x3C6E_F372_FE94_F82B,
        ClassifierKind::OpenDns => 0xBB67_AE85_84CA_A73B,
    };
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01B3);
        h ^= h >> 29;
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthrand::Day;

    fn domain(name: &str, category: DomainCategory) -> OriginDomain {
        OriginDomain {
            name: name.into(),
            category,
            first_crawled: Day::from_ymd(2010, 1, 1),
        }
    }

    fn many(category: DomainCategory, n: usize) -> Vec<OriginDomain> {
        (0..n)
            .map(|i| domain(&format!("{}{i}.example", category.slug()), category))
            .collect()
    }

    #[test]
    fn classification_is_deterministic() {
        let cls = DomainClassifier::new(ClassifierKind::VirusTotal);
        let d = domain("tube7.example", DomainCategory::Porn);
        assert_eq!(cls.classify(&d), cls.classify(&d));
    }

    #[test]
    fn porn_domains_mostly_get_porn_tags() {
        let cls = DomainClassifier::new(ClassifierKind::McAfee);
        let domains = many(DomainCategory::Porn, 500);
        let porn_tagged = domains
            .iter()
            .filter(|d| cls.classify(d).contains(&"Pornography"))
            .count();
        let share = porn_tagged as f64 / 500.0;
        assert!(share > 0.75, "porn tag share {share}");
    }

    #[test]
    fn opendns_no_result_rate_near_22_percent() {
        let cls = DomainClassifier::new(ClassifierKind::OpenDns);
        let domains = many(DomainCategory::Blog, 2000);
        let missing = domains
            .iter()
            .filter(|d| cls.classify(d) == vec![NO_RESULT])
            .count();
        let rate = missing as f64 / 2000.0;
        assert!((rate - 0.22).abs() < 0.04, "no_result rate {rate}");
    }

    #[test]
    fn virustotal_multi_tags_porn() {
        let cls = DomainClassifier::new(ClassifierKind::VirusTotal);
        let domains = many(DomainCategory::Porn, 300);
        let multi = domains
            .iter()
            .filter(|d| {
                let tags = cls.classify(d);
                tags.len() > 1 && tags[0] != NO_RESULT
            })
            .count();
        assert!(multi > 100, "only {multi}/300 multi-tagged");
    }

    #[test]
    fn classifiers_disagree_sometimes() {
        let a = DomainClassifier::new(ClassifierKind::McAfee);
        let b = DomainClassifier::new(ClassifierKind::OpenDns);
        let domains = many(DomainCategory::Porn, 300);
        let disagreements = domains
            .iter()
            .filter(|d| {
                let ta = a.classify(d);
                let tb = b.classify(d);
                (ta == vec![NO_RESULT]) != (tb == vec![NO_RESULT])
            })
            .count();
        assert!(disagreements > 20, "only {disagreements} disagreements");
    }

    #[test]
    fn confusion_produces_offtopic_tags() {
        let cls = DomainClassifier::new(ClassifierKind::McAfee);
        let domains = many(DomainCategory::News, 1000);
        let offtopic = domains
            .iter()
            .filter(|d| {
                let tags = cls.classify(d);
                tags[0] != NO_RESULT && tags[0] != "General News"
            })
            .count();
        let rate = offtopic as f64 / 1000.0;
        assert!((0.02..0.16).contains(&rate), "confusion rate {rate}");
    }

    #[test]
    fn every_category_has_tags_in_every_vocabulary() {
        for kind in ClassifierKind::ALL {
            for &(cat, _) in DomainCategory::WEIGHTED {
                assert!(!kind.tags_for(cat).is_empty(), "{kind:?}/{cat:?}");
            }
        }
    }

    #[test]
    fn vocabularies_are_distinct() {
        // The same ground truth renders differently per classifier.
        let porn_mcafee = ClassifierKind::McAfee.tags_for(DomainCategory::Porn);
        let porn_vt = ClassifierKind::VirusTotal.tags_for(DomainCategory::Porn);
        assert_ne!(porn_mcafee, porn_vt);
    }
}
