//! The reverse-image index (TinEye analogue).

use imagesim::{RobustHash, DEFAULT_MATCH_THRESHOLD};
use serde::{Deserialize, Serialize};
use synthrand::Day;

/// One image known to the reverse-search crawler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexedImage {
    /// Perceptual hash of the crawled image.
    pub hash: RobustHash,
    /// Index of the hosting domain in the origin registry.
    pub domain: u32,
    /// URL where the image is (or was) hosted.
    pub url: String,
    /// Date the reverse-search crawler indexed this copy.
    pub crawled: Day,
}

/// One query match, in TinEye report shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Match {
    /// Index into the reverse index's entry list.
    pub entry: u32,
    /// Hosting domain (origin-registry index).
    pub domain: u32,
    /// URL of the matched copy.
    pub url: String,
    /// Crawl date of the matched copy.
    pub crawled: Day,
    /// Similarity score in `(0, 1]`: `1 - distance/256`. The paper treats
    /// any score greater than zero as a match.
    pub similarity: f64,
}

/// A linear-scan perceptual-hash index.
///
/// TinEye's scale needs sharded search; at this simulation's scale (tens of
/// thousands of entries) an exhaustive scan of 256-bit Hamming distances is
/// faster than any index that would complicate determinism, and is itself a
/// measured benchmark target.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReverseIndex {
    entries: Vec<IndexedImage>,
}

impl ReverseIndex {
    /// An empty index.
    pub fn new() -> ReverseIndex {
        ReverseIndex::default()
    }

    /// Adds a crawled image.
    pub fn add(&mut self, image: IndexedImage) {
        self.entries.push(image);
    }

    /// Number of indexed images.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry access by id.
    pub fn entry(&self, id: u32) -> &IndexedImage {
        &self.entries[id as usize]
    }

    /// Queries with the default threshold.
    pub fn query(&self, hash: &RobustHash) -> Vec<Match> {
        self.query_with_threshold(hash, DEFAULT_MATCH_THRESHOLD)
    }

    /// Queries with an explicit Hamming threshold, returning matches
    /// ordered by ascending distance (stable on entry order for ties).
    pub fn query_with_threshold(&self, hash: &RobustHash, threshold: u32) -> Vec<Match> {
        let mut hits: Vec<(u32, u32)> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                let d = hash.distance(&e.hash);
                (d <= threshold).then_some((d, i as u32))
            })
            .collect();
        hits.sort_unstable();
        hits.into_iter()
            .map(|(d, i)| {
                let e = &self.entries[i as usize];
                Match {
                    entry: i,
                    domain: e.domain,
                    url: e.url.clone(),
                    crawled: e.crawled,
                    similarity: 1.0 - f64::from(d) / 256.0,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagesim::{ImageClass, ImageSpec, Transform};

    fn hash_of(model: u32, variant: u64) -> RobustHash {
        RobustHash::of(&ImageSpec::model_photo(ImageClass::ModelNude, model, variant).render())
    }

    fn indexed(model: u32, variant: u64, domain: u32, day: Day) -> IndexedImage {
        IndexedImage {
            hash: hash_of(model, variant),
            domain,
            url: format!("https://d{domain}.example/img/{model}-{variant}"),
            crawled: day,
        }
    }

    fn day(y: i32, m: u32) -> Day {
        Day::from_ymd(y, m, 1)
    }

    #[test]
    fn exact_copy_matches_with_similarity_one() {
        let mut idx = ReverseIndex::new();
        idx.add(indexed(1, 10, 0, day(2012, 1)));
        let hits = idx.query(&hash_of(1, 10));
        assert_eq!(hits.len(), 1);
        assert!((hits[0].similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edited_copy_still_matches() {
        let spec = ImageSpec::model_photo(ImageClass::ModelNude, 2, 20);
        let mut idx = ReverseIndex::new();
        idx.add(IndexedImage {
            hash: RobustHash::of(&spec.render()),
            domain: 1,
            url: "https://tube1.example/a".into(),
            crawled: day(2013, 5),
        });
        let edited = Transform::Watermark { seed: 3 }.apply(&spec.render());
        let hits = idx.query(&RobustHash::of(&edited));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].similarity < 1.0 && hits[0].similarity > 0.9);
    }

    #[test]
    fn mirrored_copy_does_not_match() {
        let spec = ImageSpec::model_photo(ImageClass::ModelNude, 3, 30);
        let mut idx = ReverseIndex::new();
        idx.add(IndexedImage {
            hash: RobustHash::of(&spec.render()),
            domain: 1,
            url: "https://tube1.example/b".into(),
            crawled: day(2013, 5),
        });
        let mirrored = Transform::MirrorHorizontal.apply(&spec.render());
        assert!(idx.query(&RobustHash::of(&mirrored)).is_empty());
    }

    #[test]
    fn unrelated_images_do_not_match() {
        let mut idx = ReverseIndex::new();
        for v in 0..20 {
            idx.add(indexed(v as u32 + 100, v, v as u32, day(2011, 1)));
        }
        assert!(idx.query(&hash_of(999, 999)).is_empty());
    }

    #[test]
    fn matches_are_sorted_by_distance() {
        let spec = ImageSpec::model_photo(ImageClass::ModelNude, 4, 40);
        let base = spec.render();
        let mut idx = ReverseIndex::new();
        idx.add(IndexedImage {
            hash: RobustHash::of(
                &Transform::Noise {
                    amplitude: 10,
                    seed: 1,
                }
                .apply(&base),
            ),
            domain: 0,
            url: "https://a.example/1".into(),
            crawled: day(2010, 1),
        });
        idx.add(IndexedImage {
            hash: RobustHash::of(&base),
            domain: 1,
            url: "https://b.example/2".into(),
            crawled: day(2011, 1),
        });
        let hits = idx.query(&RobustHash::of(&base));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].url, "https://b.example/2");
        assert!(hits[0].similarity >= hits[1].similarity);
    }

    #[test]
    fn same_image_on_many_domains_yields_many_matches() {
        // The paper reports previews matching on average 17.3 sites.
        let mut idx = ReverseIndex::new();
        for d in 0..17 {
            idx.add(indexed(5, 50, d, day(2012, 3)));
        }
        assert_eq!(idx.query(&hash_of(5, 50)).len(), 17);
    }

    #[test]
    fn threshold_zero_requires_exact_hash() {
        let spec = ImageSpec::model_photo(ImageClass::ModelNude, 6, 60);
        let base = spec.render();
        let mut idx = ReverseIndex::new();
        idx.add(IndexedImage {
            hash: RobustHash::of(&base),
            domain: 0,
            url: "https://x.example/1".into(),
            crawled: day(2012, 1),
        });
        let noisy = Transform::Noise {
            amplitude: 10,
            seed: 2,
        }
        .apply(&base);
        assert!(idx
            .query_with_threshold(&RobustHash::of(&noisy), 0)
            .is_empty());
        assert_eq!(idx.query_with_threshold(&RobustHash::of(&base), 0).len(), 1);
    }

    #[test]
    fn empty_index_returns_no_matches() {
        assert!(ReverseIndex::new().query(&hash_of(1, 1)).is_empty());
    }
}
