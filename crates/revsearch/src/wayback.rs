//! Internet Archive snapshot store (Wayback Machine analogue).
//!
//! Paper §4.5: "to analyse whether the images were online before they were
//! posted in the forums, we have used the Wayback Machine to explore the
//! Internet Archive for each of the matching URLs." A URL maps to the dates
//! it was snapshotted; the pipeline asks for the earliest snapshot and
//! compares it with the forum post date. As in reality, coverage is
//! partial: a missing snapshot does not prove the page was offline.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use synthrand::Day;

/// Snapshot archive: URL → sorted snapshot dates.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Wayback {
    snapshots: HashMap<String, Vec<Day>>,
}

impl Wayback {
    /// An empty archive.
    pub fn new() -> Wayback {
        Wayback::default()
    }

    /// Records a snapshot of `url` on `date`.
    pub fn record(&mut self, url: &str, date: Day) {
        let v = self.snapshots.entry(url.to_string()).or_default();
        match v.binary_search(&date) {
            Ok(_) => {}
            Err(pos) => v.insert(pos, date),
        }
    }

    /// Earliest snapshot of `url`, if archived at all.
    pub fn first_snapshot(&self, url: &str) -> Option<Day> {
        self.snapshots.get(url).and_then(|v| v.first().copied())
    }

    /// True when `url` has a snapshot strictly before `date`.
    pub fn seen_before(&self, url: &str, date: Day) -> bool {
        self.first_snapshot(url).is_some_and(|d| d < date)
    }

    /// All snapshots of `url` (sorted), empty if unarchived.
    pub fn snapshots(&self, url: &str) -> &[Day] {
        self.snapshots.get(url).map_or(&[], Vec::as_slice)
    }

    /// Number of archived URLs.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when nothing is archived.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u32) -> Day {
        Day::from_ymd(y, m, 15)
    }

    #[test]
    fn first_snapshot_is_earliest() {
        let mut wb = Wayback::new();
        wb.record("https://tube1.example/x", d(2015, 6));
        wb.record("https://tube1.example/x", d(2012, 2));
        wb.record("https://tube1.example/x", d(2013, 9));
        assert_eq!(
            wb.first_snapshot("https://tube1.example/x"),
            Some(d(2012, 2))
        );
        assert_eq!(wb.snapshots("https://tube1.example/x").len(), 3);
    }

    #[test]
    fn seen_before_is_strict() {
        let mut wb = Wayback::new();
        wb.record("u", d(2014, 1));
        assert!(wb.seen_before("u", d(2015, 1)));
        assert!(!wb.seen_before("u", d(2014, 1)));
        assert!(!wb.seen_before("u", d(2013, 1)));
    }

    #[test]
    fn unarchived_urls_are_unknown() {
        let wb = Wayback::new();
        assert_eq!(wb.first_snapshot("nope"), None);
        assert!(!wb.seen_before("nope", d(2020, 1)));
        assert!(wb.snapshots("nope").is_empty());
    }

    #[test]
    fn duplicate_snapshots_dedupe() {
        let mut wb = Wayback::new();
        wb.record("u", d(2014, 1));
        wb.record("u", d(2014, 1));
        assert_eq!(wb.snapshots("u").len(), 1);
        assert_eq!(wb.len(), 1);
    }
}
