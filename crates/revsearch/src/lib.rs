//! Reverse image search, web-archive lookups, and domain classification.
//!
//! Paper §4.5 combines three third-party services:
//!
//! * **TinEye** — reverse image search over 29 billion crawled images,
//!   reporting for each match "the domain and URL where the image is (or
//!   was) hosted, the backlink from where it was crawled and the crawling
//!   date". [`ReverseIndex`] is the analogue: an index of robust hashes of
//!   every image on the synthetic web, with Hamming-threshold matching.
//! * **The Wayback Machine** — used "to explore the Internet Archive for
//!   each of the matching URLs" to establish whether an image was online
//!   before it was posted to the forum. [`Wayback`] stores snapshot dates.
//! * **OpenDNS / McAfee / VirusTotal domain classifiers** — used to tag the
//!   5 917 provenance domains. [`domaincls`] implements three classifiers
//!   with distinct vocabularies, multi-tagging, disagreement, and
//!   `no_result` rates calibrated to Table 6.

pub mod domaincls;
pub mod index;
pub mod wayback;

pub use domaincls::{ClassifierKind, DomainClassifier};
pub use index::{IndexedImage, Match, ReverseIndex};
pub use wayback::Wayback;
