//! Deterministic data-parallel primitives for the hot pipeline stages.
//!
//! Every parallel stage in the workspace uses the same pattern, extracted
//! from the original `measure_batch`: split the input into contiguous
//! chunks, map each chunk on a scoped worker thread, and reassemble the
//! per-chunk outputs **in input order**. Because the mapped function is a
//! pure function of the item (and, for [`par_map_seeded`], of a seed
//! derived from the item's fixed-size block — never from the worker
//! count), the output is byte-identical for *any* worker count, including
//! the serial fallback. That is the determinism contract the pipeline's
//! snapshot tests enforce.
//!
//! Worker threads come from the `crossbeam::scope` stub, which spawns
//! real OS threads via `std::thread::scope`.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// A worker closure panicked inside a parallel primitive. Carries the
/// stage label the caller supplied, the chunk index the panic came from,
/// and the rendered panic payload — enough to name the poisoned
/// partition without aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Caller-supplied stage label (e.g. `"measure_images"`).
    pub stage: &'static str,
    /// Which chunk's worker panicked (0 for the serial path).
    pub chunk: usize,
    /// The panic payload, rendered (`&str`/`String` payloads verbatim).
    pub payload: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parallel worker panicked in stage `{}` (chunk {}): {}",
            self.stage, self.chunk, self.payload
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Renders a caught panic payload for [`WorkerPanic::payload`].
fn panic_payload(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Inputs shorter than this run serially on the calling thread.
///
/// Rationale: spawning a scoped OS thread costs on the order of tens of
/// microseconds; the cheapest per-item work we parallelise (rendering and
/// hashing one synthetic image, extracting one thread's features) sits
/// around a microsecond or more. Below ~64 items the spawn + join
/// overhead rivals the work itself, so small batches — most packs, tiny
/// test corpora — stay serial and fast, while anything worth splitting is
/// far above the cutoff. Shared by all parallel stages so the threshold
/// is tuned (and documented) in exactly one place.
pub const SERIAL_CUTOFF: usize = 64;

use std::sync::atomic::{AtomicBool, Ordering};

/// Whether [`effective_workers`] clamps to the host's core count.
static CLAMP_TO_AVAILABLE: AtomicBool = AtomicBool::new(true);

/// Enables or disables the core-count clamp (process-global).
///
/// The clamp is on by default: oversubscribing a 1-core host with 4
/// worker threads was measured *slower* than running serially
/// (BENCH_pipeline.json aggregate_speedup 0.90), and the determinism
/// contract means the clamp can never change output — only wall time.
/// The worker-matrix tests disable it so `workers = 7` really spawns 7
/// threads and exercises chunk boundaries even on small hosts.
pub fn set_clamp_enabled(enabled: bool) {
    CLAMP_TO_AVAILABLE.store(enabled, Ordering::Relaxed);
}

/// Current state of the core-count clamp.
pub fn clamp_enabled() -> bool {
    CLAMP_TO_AVAILABLE.load(Ordering::Relaxed)
}

/// The pure clamp rule: `0` means "all of `available`", anything else is
/// capped at `available` (never below 1). Split out so the policy is
/// unit-testable without touching the process-global switch.
pub fn clamped_workers(requested: usize, available: usize) -> usize {
    let available = available.max(1);
    if requested == 0 {
        available
    } else {
        requested.min(available)
    }
}

/// Resolves a `workers` knob: `0` means "all available cores", and —
/// unless the clamp is disabled via [`set_clamp_enabled`] — explicit
/// requests are capped at `std::thread::available_parallelism()` so an
/// oversubscribed knob degrades to the host's real parallelism.
pub fn effective_workers(workers: usize) -> usize {
    let available = std::thread::available_parallelism().map_or(4, |n| n.get());
    if clamp_enabled() {
        clamped_workers(workers, available)
    } else if workers == 0 {
        available
    } else {
        workers
    }
}

/// Maps `f` over `items` across `workers` threads, preserving input
/// order. `workers == 0` uses all cores; short inputs run serially.
pub fn par_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items, workers, |_, item| f(item))
}

/// [`par_map`] where `f` also receives the item's index in `items`.
pub fn par_map_indexed<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_range(items.len(), workers, |i| f(i, &items[i]))
}

/// Maps `f` over the index range `0..n` across `workers` threads,
/// returning results in index order. The slice-free primitive the others
/// build on — iterative solvers use it to fill a whole vector per
/// iteration without materialising an index list.
pub fn par_map_range<U, F>(n: usize, workers: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    match try_par_map_range("par_map_range", n, workers, f) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`par_map`]: a panicking worker closure surfaces as a
/// [`WorkerPanic`] naming `stage` and the chunk index instead of
/// aborting the run. The supervision layer uses this to quarantine a
/// poisoned partition while the other shards keep their results.
pub fn try_par_map<T, U, F>(
    stage: &'static str,
    items: &[T],
    workers: usize,
    f: F,
) -> Result<Vec<U>, WorkerPanic>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    try_par_map_range(stage, items.len(), workers, |i| f(&items[i]))
}

/// Fallible [`par_map_range`]: every worker (and the serial fallback)
/// runs under `catch_unwind`, so the first panicking chunk is reported
/// as a typed [`WorkerPanic`] and the scope still joins cleanly.
pub fn try_par_map_range<U, F>(
    stage: &'static str,
    n: usize,
    workers: usize,
    f: F,
) -> Result<Vec<U>, WorkerPanic>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = effective_workers(workers);
    if n < SERIAL_CUTOFF || workers <= 1 {
        return catch_unwind(AssertUnwindSafe(|| (0..n).map(&f).collect::<Vec<U>>())).map_err(
            |e| WorkerPanic {
                stage,
                chunk: 0,
                payload: panic_payload(e),
            },
        );
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<U> = Vec::with_capacity(n);
    let mut failure: Option<WorkerPanic> = None;
    crossbeam::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(n);
                s.spawn(move |_| {
                    catch_unwind(AssertUnwindSafe(|| (start..end).map(f).collect::<Vec<U>>()))
                })
            })
            .collect();
        for (c, h) in handles.into_iter().enumerate() {
            match h.join().expect("worker holds its own panic") {
                Ok(part) => out.extend(part),
                Err(e) => {
                    if failure.is_none() {
                        failure = Some(WorkerPanic {
                            stage,
                            chunk: c,
                            payload: panic_payload(e),
                        });
                    }
                }
            }
        }
    })
    .expect("parallel scope");
    match failure {
        None => Ok(out),
        Some(e) => Err(e),
    }
}

/// Fills `out[i] = f(i)` in place across `workers` threads — the
/// allocation-free sibling of [`par_map_range`] for iterative solvers
/// that sweep the same buffer every iteration. Chunking matches
/// [`par_map_range`] exactly, and `f` is pure per index, so the filled
/// buffer is identical at every worker count.
pub fn par_fill_range<U, F>(out: &mut [U], workers: usize, f: F)
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let n = out.len();
    let workers = effective_workers(workers);
    if n < SERIAL_CUTOFF || workers <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    crossbeam::scope(|s| {
        let f = &f;
        for (c, part) in out.chunks_mut(chunk).enumerate() {
            s.spawn(move |_| {
                let start = c * chunk;
                for (j, slot) in part.iter_mut().enumerate() {
                    *slot = f(start + j);
                }
            });
        }
    })
    .expect("parallel scope");
}

/// Splits `items` into one contiguous chunk per worker and maps `f` over
/// each whole chunk on its own thread, returning per-chunk results in
/// input order. The building block for parallel *accumulation* (document
/// frequencies, digest counts): each worker folds its chunk, the caller
/// merges the partials. The number of chunks depends on the worker count,
/// so worker-count invariance requires the merge to be commutative and
/// associative over chunk boundaries (integer counts are; floats are
/// not). Short inputs produce a single chunk processed serially.
pub fn par_map_chunks<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    match try_par_map_chunks("par_map_chunks", items, workers, f) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`par_map_chunks`]: the chunk index in the error is the
/// index of the per-worker chunk whose closure panicked (0 for the
/// serial single-chunk path).
pub fn try_par_map_chunks<T, U, F>(
    stage: &'static str,
    items: &[T],
    workers: usize,
    f: F,
) -> Result<Vec<U>, WorkerPanic>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    let workers = effective_workers(workers);
    if items.len() < SERIAL_CUTOFF || workers <= 1 {
        return catch_unwind(AssertUnwindSafe(|| vec![f(items)])).map_err(|e| WorkerPanic {
            stage,
            chunk: 0,
            payload: panic_payload(e),
        });
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<U> = Vec::with_capacity(workers);
    let mut failure: Option<WorkerPanic> = None;
    crossbeam::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| s.spawn(move |_| catch_unwind(AssertUnwindSafe(|| f(part)))))
            .collect();
        for (c, h) in handles.into_iter().enumerate() {
            match h.join().expect("worker holds its own panic") {
                Ok(v) => out.push(v),
                Err(e) => {
                    if failure.is_none() {
                        failure = Some(WorkerPanic {
                            stage,
                            chunk: c,
                            payload: panic_payload(e),
                        });
                    }
                }
            }
        }
    })
    .expect("parallel scope");
    match failure {
        None => Ok(out),
        Some(e) => Err(e),
    }
}

/// Mixes a block index into a base seed (splitmix-style odd constant).
fn block_seed(seed: u64, block: usize) -> u64 {
    seed ^ (block as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Maps `f` over `items` with per-block seeded state, deterministically
/// for any worker count.
///
/// The input is split into **fixed-size blocks of [`SERIAL_CUTOFF`]
/// items** — fixed, so block boundaries never depend on the worker count
/// the way per-worker chunks do. Each block builds its own state via
/// `init(seed ⊕ mix(block_index))` and maps its items through `f` in
/// order; blocks are distributed over the workers and reassembled in
/// input order. Stages that need randomness inside a parallel loop seed
/// `init` from `PipelineOptions::seed`, keeping the stream independent of
/// both thread scheduling and worker count.
pub fn par_map_seeded<T, U, S, I, F>(
    items: &[T],
    workers: usize,
    seed: u64,
    init: I,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn(u64) -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let blocks: Vec<(usize, &[T])> = items.chunks(SERIAL_CUTOFF).enumerate().collect();
    let mapped: Vec<Vec<U>> = par_map(&blocks, workers, |&(b, part)| {
        let mut state = init(block_seed(seed, b));
        part.iter()
            .enumerate()
            .map(|(j, item)| f(&mut state, b * SERIAL_CUTOFF + j, item))
            .collect()
    });
    mapped.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = par_map(&[] as &[i32], 4, |x| x * 2);
        assert!(out.is_empty());
        assert!(par_map_range(0, 4, |i| i).is_empty());
    }

    #[test]
    fn below_cutoff_runs_serially_and_matches() {
        let items: Vec<u64> = (0..SERIAL_CUTOFF as u64 - 1).collect();
        let out = par_map(&items, 8, |&x| x * x);
        let serial: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn length_not_divisible_by_workers_preserves_order() {
        // 1000 items over 7 workers: chunks of 143, last chunk short.
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, 7, |&x| x + 1);
        let serial: Vec<u64> = items.iter().map(|&x| x + 1).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn more_workers_than_items_still_covers_everything() {
        let items: Vec<u64> = (0..SERIAL_CUTOFF as u64 + 5).collect();
        let out = par_map(&items, 1000, |&x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn indexed_map_sees_global_indices() {
        let items = vec![10u64; 300];
        let out = par_map_indexed(&items, 4, |i, &x| i as u64 + x);
        let serial: Vec<u64> = (0..300).map(|i| i as u64 + 10).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn range_map_matches_serial_for_any_worker_count() {
        let serial: Vec<usize> = (0..517).map(|i| i * 3).collect();
        for workers in [1, 2, 3, 7, 16] {
            assert_eq!(par_map_range(517, workers, |i| i * 3), serial);
        }
    }

    /// The seeded contract: the per-item stream depends only on the seed
    /// and the item's fixed block, never on the worker count.
    #[test]
    fn seeded_map_is_worker_count_invariant() {
        // A toy xorshift state stands in for StdRng.
        let next = |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            *s
        };
        let items: Vec<u64> = (0..1000).collect();
        let run = |workers| {
            par_map_seeded(
                &items,
                workers,
                0xFEED,
                |s| s.max(1),
                |s, i, &x| next(s) ^ x ^ i as u64,
            )
        };
        let reference = run(1);
        for workers in [2, 3, 7, 13] {
            assert_eq!(run(workers), reference, "workers={workers}");
        }
    }

    #[test]
    fn seeded_blocks_get_distinct_seeds() {
        let items = vec![0u8; 3 * SERIAL_CUTOFF];
        let seeds = par_map_seeded(&items, 2, 7, |s| s, |s, _, _| *s);
        assert_eq!(seeds[0], seeds[SERIAL_CUTOFF - 1], "same block, same seed");
        assert_ne!(seeds[0], seeds[SERIAL_CUTOFF], "next block differs");
        assert_ne!(seeds[SERIAL_CUTOFF], seeds[2 * SERIAL_CUTOFF]);
    }

    #[test]
    fn chunked_fold_partials_merge_to_serial_total() {
        let items: Vec<u64> = (0..999).collect();
        let serial: u64 = items.iter().sum();
        for workers in [1, 2, 5, 8] {
            let partials = par_map_chunks(&items, workers, |part| part.iter().sum::<u64>());
            assert!(partials.len() <= workers.max(1));
            assert_eq!(partials.iter().sum::<u64>(), serial, "workers={workers}");
        }
        // Short input: one serial chunk.
        let short: Vec<u64> = (0..10).collect();
        assert_eq!(par_map_chunks(&short, 8, |p| p.len()), vec![10]);
        // Empty input still produces one (empty) chunk for the fold.
        assert_eq!(par_map_chunks(&[] as &[u64], 4, |p| p.len()), vec![0]);
    }

    #[test]
    fn zero_workers_means_all_cores() {
        assert!(effective_workers(0) >= 1);
        // And the mapping still matches serial output.
        let items: Vec<u64> = (0..500).collect();
        assert_eq!(par_map(&items, 0, |&x| x * 7), {
            let s: Vec<u64> = items.iter().map(|&x| x * 7).collect();
            s
        });
    }

    /// The pure clamp rule, independent of the host's core count.
    #[test]
    fn clamp_rule_caps_at_available() {
        assert_eq!(clamped_workers(0, 8), 8);
        assert_eq!(clamped_workers(4, 8), 4);
        assert_eq!(clamped_workers(16, 8), 8);
        assert_eq!(clamped_workers(4, 1), 1);
        assert_eq!(clamped_workers(0, 0), 1, "available is floored at 1");
    }

    #[test]
    fn clamp_opt_out_honours_explicit_requests() {
        // The switch is process-global; this test only ever *disables*
        // it, matching what every worker-matrix test wants.
        set_clamp_enabled(false);
        assert!(!clamp_enabled());
        assert_eq!(effective_workers(64), 64);
        let items: Vec<u64> = (0..500).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        assert_eq!(par_map(&items, 64, |&x| x * 3), serial);
    }

    /// The satellite contract: a deliberately panicking closure on the
    /// parallel path surfaces a typed error naming stage + chunk,
    /// instead of aborting via `join().expect`.
    #[test]
    fn panicking_worker_surfaces_typed_error() {
        set_clamp_enabled(false);
        let err = try_par_map_range("demo_stage", 1000, 4, |i| {
            if i == 700 {
                panic!("poisoned item {i}");
            }
            i * 2
        })
        .unwrap_err();
        assert_eq!(err.stage, "demo_stage");
        assert_eq!(err.chunk, 2, "item 700 falls in the third 250-item chunk");
        assert!(err.payload.contains("poisoned item 700"));
        assert!(err.to_string().contains("demo_stage"));
        // The same closure without the poison succeeds through the shim.
        let ok = try_par_map_range("demo_stage", 1000, 4, |i| i * 2).unwrap();
        assert_eq!(ok, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_catches_panics_too() {
        let err = try_par_map("tiny", &[1u32, 2, 3], 4, |_| -> u32 { panic!("boom") }).unwrap_err();
        assert_eq!((err.stage, err.chunk), ("tiny", 0));
        assert_eq!(err.payload, "boom");
    }

    #[test]
    fn chunked_panics_name_their_chunk() {
        set_clamp_enabled(false);
        let items: Vec<u64> = (0..500).collect();
        let err = try_par_map_chunks("fold", &items, 5, |part| {
            if part.contains(&499) {
                panic!("last chunk");
            }
            part.len()
        })
        .unwrap_err();
        assert_eq!(err.stage, "fold");
        assert_eq!(err.chunk, 4, "500 items over 5 workers: chunks of 100");
        assert_eq!(err.payload, "last chunk");
    }

    #[test]
    fn fill_range_matches_map_range_at_every_worker_count() {
        set_clamp_enabled(false);
        let reference = par_map_range(517, 1, |i| i * 31 + 7);
        for workers in [1, 2, 3, 7, 16] {
            let mut out = vec![0usize; 517];
            par_fill_range(&mut out, workers, |i| i * 31 + 7);
            assert_eq!(out, reference, "workers={workers}");
        }
        // Short buffers take the serial path.
        let mut short = vec![0usize; 5];
        par_fill_range(&mut short, 8, |i| i + 1);
        assert_eq!(short, vec![1, 2, 3, 4, 5]);
        let mut empty: Vec<usize> = Vec::new();
        par_fill_range(&mut empty, 4, |i| i);
        assert!(empty.is_empty());
    }
}
