//! Walker alias method for O(1) weighted categorical sampling.
//!
//! The generators draw millions of categorical values (which forum, which
//! hosting site, which payment platform, which image class), so constant-time
//! sampling matters. Weights are calibrated from the paper's tables, e.g.
//! the imgur-dominated preview-host mix of Table 3.

use rand::rngs::StdRng;
use rand::Rng;

/// A categorical sampler over `0..n` built with the alias method.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl WeightedIndex {
    /// Builds the alias table from non-negative weights.
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> WeightedIndex {
        assert!(!weights.is_empty(), "WeightedIndex requires weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "bad weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weights sum to zero");

        let n = weights.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();

        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
        }
        WeightedIndex { prob, alias }
    }

    /// Builds from integer counts (e.g. link counts straight from a paper
    /// table).
    pub fn from_counts(counts: &[u64]) -> WeightedIndex {
        let w: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        WeightedIndex::new(&w)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when there are no categories (never — construction forbids it).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples a category index in O(1).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn frequencies_match_weights() {
        let w = [3297.0, 1006.0, 679.0, 383.0]; // imgur/Gyazo/ImageShack/prnt
        let idx = WeightedIndex::new(&w);
        let mut rng = rng_from_seed(20);
        let n = 100_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[idx.sample(&mut rng)] += 1;
        }
        let total: f64 = w.iter().sum();
        for (i, &wi) in w.iter().enumerate() {
            let expected = wi / total;
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "cat {i}: {observed} vs {expected}"
            );
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let idx = WeightedIndex::new(&[1.0, 0.0, 2.0]);
        let mut rng = rng_from_seed(21);
        for _ in 0..20_000 {
            assert_ne!(idx.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_category_always_sampled() {
        let idx = WeightedIndex::new(&[0.5]);
        let mut rng = rng_from_seed(22);
        for _ in 0..100 {
            assert_eq!(idx.sample(&mut rng), 0);
        }
    }

    #[test]
    fn from_counts_matches_new() {
        let a = WeightedIndex::from_counts(&[10, 20, 30]);
        let b = WeightedIndex::new(&[10.0, 20.0, 30.0]);
        let mut r1 = rng_from_seed(23);
        let mut r2 = rng_from_seed(23);
        for _ in 0..1000 {
            assert_eq!(a.sample(&mut r1), b.sample(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn rejects_all_zero() {
        let _ = WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "bad weight")]
    fn rejects_negative() {
        let _ = WeightedIndex::new(&[1.0, -0.1]);
    }
}
