//! Continuous and discrete samplers built from uniforms.
//!
//! [`LogNormal`] models earnings amounts (§5: most actors under US$1k, a
//! long tail past US$20k), [`Pareto`] models pack popularity, [`Exponential`]
//! models inter-arrival gaps between posts, and [`Poisson`] models small
//! per-entity counts (links per post, images per preview).

use rand::rngs::StdRng;
use rand::Rng;

/// Log-normal distribution parameterised by the underlying normal's
/// mean `mu` and standard deviation `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal sampler. Panics if `sigma` is negative or the
    /// parameters are not finite.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal from a target *median* and sigma: the median of
    /// LogNormal(mu, sigma) is exp(mu), which is the intuitive calibration
    /// knob ("typical trade is $20").
    pub fn from_median(median: f64, sigma: f64) -> LogNormal {
        assert!(median > 0.0);
        LogNormal::new(median.ln(), sigma)
    }

    /// Samples one value (> 0).
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Pareto (power-law tail) distribution with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto sampler. Panics unless `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Pareto {
        assert!(x_min > 0.0 && alpha > 0.0);
        Pareto { x_min, alpha }
    }

    /// Samples by inversion: `x_min / U^(1/alpha)`.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential sampler. Panics unless `lambda > 0`.
    pub fn new(lambda: f64) -> Exponential {
        assert!(lambda > 0.0);
        Exponential { lambda }
    }

    /// Creates a sampler with the given mean.
    pub fn from_mean(mean: f64) -> Exponential {
        Exponential::new(1.0 / mean)
    }

    /// Samples by inversion.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() / self.lambda
    }
}

/// Poisson distribution; exact (Knuth) for small means, normal approximation
/// above `lambda = 30` where the exact loop gets slow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson sampler. Panics unless `lambda > 0`.
    pub fn new(lambda: f64) -> Poisson {
        assert!(lambda > 0.0);
        Poisson { lambda }
    }

    /// Samples one count.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        if self.lambda < 30.0 {
            // Knuth's product-of-uniforms method.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = self.lambda + self.lambda.sqrt() * standard_normal(rng);
            x.round().max(0.0) as u64
        }
    }
}

/// One draw from N(0, 1) via Box–Muller (single value; the pair's second
/// member is discarded to keep per-sample draw counts fixed).
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    fn mean_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_from_seed(10);
        let xs: Vec<f64> = (0..40_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_calibration() {
        let d = LogNormal::from_median(20.0, 1.0);
        let mut rng = rng_from_seed(11);
        let mut xs: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 20.0).abs() / 20.0 < 0.1, "median {med}");
    }

    #[test]
    fn lognormal_is_positive_and_heavy_tailed() {
        let d = LogNormal::new(3.0, 1.5);
        let mut rng = rng_from_seed(12);
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            mean > median,
            "heavy right tail: mean {mean} > median {median}"
        );
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Pareto::new(5.0, 2.0);
        let mut rng = rng_from_seed(13);
        for _ in 0..5000 {
            assert!(d.sample(&mut rng) >= 5.0);
        }
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::from_mean(7.0);
        let mut rng = rng_from_seed(14);
        let m = mean_of(40_000, || d.sample(&mut rng));
        assert!((m - 7.0).abs() < 0.25, "mean {m}");
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let d = Poisson::new(3.0);
        let mut rng = rng_from_seed(15);
        let m = mean_of(40_000, || d.sample(&mut rng) as f64);
        assert!((m - 3.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let d = Poisson::new(100.0);
        let mut rng = rng_from_seed(16);
        let m = mean_of(20_000, || d.sample(&mut rng) as f64);
        assert!((m - 100.0).abs() < 1.0, "mean {m}");
    }
}
