//! Deterministic randomness utilities for synthetic-world generation.
//!
//! Every generated artefact in this workspace (forum corpus, hosted images,
//! crawl dates, …) must be exactly reproducible from a single `u64` seed so
//! that the measurement pipeline's outputs are stable across runs and
//! machines. This crate provides:
//!
//! * [`SeedFactory`] — derives independent sub-seeds from a root seed, so
//!   that adding a new generation stage never perturbs the random streams of
//!   existing stages;
//! * heavy-tailed samplers ([`Zipf`], [`LogNormal`], [`Pareto`]) used to model
//!   actor activity, thread popularity, and earnings distributions, which the
//!   paper reports as strongly skewed;
//! * [`WeightedIndex`] — Walker alias tables for O(1) categorical sampling
//!   (e.g. choosing a hosting site per link according to paper Tables 3/4);
//! * [`time::Day`] — the shared civil-date type of the simulation. Dates
//!   matter throughout the paper (first-post dates, crawl-before-post
//!   ordering in §4.5, the §5 platform-evolution timeline), so a single
//!   compact, ordered representation is shared by all crates.
//!
//! The samplers intentionally avoid `rand_distr` to keep the dependency
//! surface at the approved list; the implementations are textbook
//! (inversion, Box–Muller, alias method) and are property-tested.

pub mod dist;
pub mod seed;
pub mod time;
pub mod weighted;
pub mod zipf;

pub use dist::{Exponential, LogNormal, Pareto, Poisson};
pub use seed::{splitmix64, SeedFactory};
pub use time::Day;
pub use weighted::WeightedIndex;
pub use zipf::Zipf;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the canonical RNG used across the workspace from a `u64` seed.
///
/// All generators accept `&mut StdRng` so that the concrete RNG type is
/// fixed and reproducibility is guaranteed by construction.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws a value in `[lo, hi]` from a triangular-ish distribution biased
/// towards `lo` (used for small count fields like "images per preview post").
///
/// Returns `lo` when the range is empty or inverted.
pub fn skewed_count(rng: &mut StdRng, lo: u32, hi: u32) -> u32 {
    use rand::Rng;
    if hi <= lo {
        return lo;
    }
    let a: f64 = rng.gen();
    let b: f64 = rng.gen();
    let t = a.min(b); // min of two uniforms skews low
    lo + ((hi - lo) as f64 * t).round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        use rand::Rng;
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn skewed_count_stays_in_range() {
        let mut rng = rng_from_seed(7);
        for _ in 0..1000 {
            let v = skewed_count(&mut rng, 2, 9);
            assert!((2..=9).contains(&v));
        }
    }

    #[test]
    fn skewed_count_handles_degenerate_range() {
        let mut rng = rng_from_seed(7);
        assert_eq!(skewed_count(&mut rng, 5, 5), 5);
        assert_eq!(skewed_count(&mut rng, 9, 2), 9);
    }

    #[test]
    fn skewed_count_is_biased_low() {
        let mut rng = rng_from_seed(11);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| skewed_count(&mut rng, 0, 100) as f64)
            .sum::<f64>()
            / n as f64;
        // Expected value of min(U1, U2) is 1/3, so the mean should sit
        // clearly below the uniform midpoint of 50.
        assert!(mean < 42.0, "mean {mean} not biased low");
    }
}
