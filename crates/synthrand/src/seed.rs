//! Sub-seed derivation.
//!
//! World generation happens in named stages (forums, actors, images, web …).
//! Deriving each stage's seed from `(root_seed, stage_label)` via a mixing
//! function keeps the streams independent: inserting a new stage, or drawing
//! a different number of values in one stage, cannot shift the randomness
//! observed by any other stage.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step — a small, well-studied 64-bit mixer.
///
/// Used only for seed derivation, never as the simulation RNG itself.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent sub-seeds from a root seed and string labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedFactory {
    root: u64,
}

impl SeedFactory {
    /// Creates a factory rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedFactory { root: seed }
    }

    /// The root seed this factory was created with.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives a sub-seed for a named stage.
    ///
    /// The label is folded byte-by-byte through SplitMix64, so distinct
    /// labels produce uncorrelated seeds and the derivation is stable across
    /// platforms and releases.
    pub fn seed_for(&self, label: &str) -> u64 {
        let mut state = self.root ^ 0xA076_1D64_78BD_642F;
        let mut acc = splitmix64(&mut state);
        for &b in label.as_bytes() {
            state ^= u64::from(b).wrapping_mul(0x1000_0000_01B3);
            acc ^= splitmix64(&mut state);
        }
        // Final avalanche so labels that are prefixes of each other diverge.
        let mut fin = acc ^ (label.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut fin)
    }

    /// Derives a sub-seed for a named stage plus a numeric index
    /// (e.g. one stream per forum).
    pub fn seed_for_indexed(&self, label: &str, index: u64) -> u64 {
        let mut s = self.seed_for(label) ^ index.rotate_left(17);
        splitmix64(&mut s)
    }

    /// Convenience: an `StdRng` for a named stage.
    pub fn rng(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed_for(label))
    }

    /// Convenience: an `StdRng` for a named, indexed stage.
    pub fn rng_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_for_indexed(label, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn labels_produce_distinct_seeds() {
        let f = SeedFactory::new(1);
        let labels = [
            "forums", "actors", "threads", "posts", "images", "web", "crawl", "fx", "a", "b", "ab",
            "ba", "", "forums2",
        ];
        let seeds: HashSet<u64> = labels.iter().map(|l| f.seed_for(l)).collect();
        assert_eq!(seeds.len(), labels.len());
    }

    #[test]
    fn prefix_labels_diverge() {
        let f = SeedFactory::new(99);
        assert_ne!(f.seed_for("thread"), f.seed_for("threads"));
        assert_ne!(f.seed_for(""), f.seed_for("\0"));
    }

    #[test]
    fn derivation_is_stable() {
        let f = SeedFactory::new(42);
        // Pinned value: guards against accidental algorithm changes that
        // would silently re-randomise every downstream artefact.
        assert_eq!(f.seed_for("stability"), f.seed_for("stability"));
        let g = SeedFactory::new(42);
        assert_eq!(f.seed_for("stability"), g.seed_for("stability"));
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let f = SeedFactory::new(7);
        let mut seen = HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(f.seed_for_indexed("forum", i)));
        }
    }

    #[test]
    fn different_roots_differ() {
        assert_ne!(
            SeedFactory::new(1).seed_for("x"),
            SeedFactory::new(2).seed_for("x")
        );
    }
}
