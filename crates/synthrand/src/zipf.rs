//! Zipf-distributed sampling over ranks `1..=n`.
//!
//! Underground-forum activity is heavily skewed: the paper finds ~80% of the
//! 73k actors made fewer than 10 posts while 13 actors made over 1 000
//! (Table 8). Zipf rank sampling reproduces that skew when assigning posts
//! to actors and replies to threads.

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf(`n`, `s`) sampler using a precomputed cumulative table.
///
/// P(rank = k) ∝ 1 / k^s. Construction is O(n); sampling is O(log n) via
/// binary search on the CDF. For the corpus sizes here (n ≤ ~100k) the table
/// is small and exact, which we prefer over rejection sampling for
/// determinism (fixed draw count per sample).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over ranks `1..=n` with exponent `s`.
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf requires n > 0");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating error leaving the last entry below 1.0.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is exactly one rank (always sampled).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples a rank in `1..=n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Samples a zero-based index in `0..n` (convenience for indexing).
    pub fn sample_index(&self, rng: &mut StdRng) -> usize {
        self.sample(rng) - 1
    }

    /// The probability mass of rank `k` (1-based), for tests/calibration.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len());
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn ranks_stay_in_bounds() {
        let z = Zipf::new(100, 1.2);
        let mut rng = rng_from_seed(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = rng_from_seed(2);
        let n = 50_000;
        let ones = (0..n).filter(|_| z.sample(&mut rng) == 1).count();
        let p1 = z.pmf(1);
        let observed = ones as f64 / n as f64;
        assert!(
            (observed - p1).abs() < 0.02,
            "observed {observed} vs pmf {p1}"
        );
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 0.9);
        let total: f64 = (1..=500).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 2.0);
        let mut rng = rng_from_seed(3);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let flat = Zipf::new(100, 0.8);
        let steep = Zipf::new(100, 1.6);
        assert!(steep.pmf(1) > flat.pmf(1));
        assert!(steep.pmf(100) < flat.pmf(100));
    }
}
