//! Civil dates for the simulation.
//!
//! The paper's measurements are date-driven: per-forum first-post dates
//! (Table 1), "seen before" ordering between web crawl dates and forum post
//! dates (Table 5), monthly payment-platform series (Figure 3), and
//! days-active-before/after-eWhoring (Table 8). A compact totally-ordered
//! date type shared by every crate keeps those comparisons trivial.
//!
//! [`Day`] stores the number of days since 2000-01-01 (day 0). The dataset
//! spans 2008-11 to 2019-03, so `u32` is ample. Conversions use the standard
//! civil-from-days / days-from-civil algorithms (Howard Hinnant's
//! formulation), exact over the full supported range.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Days relative to 2000-01-01 in the proleptic Gregorian calendar.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Day(pub u32);

/// Days between 0000-03-01 and 2000-01-01 in the era-based algorithm below.
const EPOCH_2000_FROM_CIVIL: i64 = 730_425;

impl Day {
    /// Builds a `Day` from a civil date. Panics on dates before 2000-01-01
    /// or on non-existent calendar dates (e.g. month 13), since generated
    /// data never contains them and silent clamping would hide bugs.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Day {
        assert!((1..=12).contains(&month), "bad month {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "bad day {year}-{month}-{day}"
        );
        let days = days_from_civil(year, month, day) - EPOCH_2000_FROM_CIVIL;
        assert!(
            days >= 0,
            "date {year}-{month:02}-{day:02} precedes 2000-01-01"
        );
        Day(days as u32)
    }

    /// The civil `(year, month, day)` of this day.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(i64::from(self.0) + EPOCH_2000_FROM_CIVIL)
    }

    /// Calendar year.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// Calendar month (1–12).
    pub fn month(self) -> u32 {
        self.ymd().1
    }

    /// A month index (`year * 12 + month - 1`) used for monthly bucketing
    /// (Figure 3's per-month platform counts).
    pub fn month_index(self) -> i32 {
        let (y, m, _) = self.ymd();
        y * 12 + m as i32 - 1
    }

    /// `MM/YY` rendering used by paper Table 1 ("first post" column).
    pub fn mm_yy(self) -> String {
        let (y, m, _) = self.ymd();
        format!("{m:02}/{:02}", y % 100)
    }

    /// Adds `n` days.
    pub fn plus_days(self, n: u32) -> Day {
        Day(self.0 + n)
    }

    /// Whole days from `earlier` to `self`; zero if `earlier` is later.
    pub fn days_since(self, earlier: Day) -> u32 {
        self.0.saturating_sub(earlier.0)
    }

    /// Uniformly samples a day in `[lo, hi]` (inclusive).
    pub fn sample_between(rng: &mut StdRng, lo: Day, hi: Day) -> Day {
        assert!(lo <= hi, "sample_between: {lo} > {hi}");
        Day(rng.gen_range(lo.0..=hi.0))
    }
}

impl fmt::Display for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month validated by caller"),
    }
}

/// Days since 0000-03-01 for a civil date (Hinnant's `days_from_civil`).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe
}

/// Civil date for days since 0000-03-01 (Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Day::from_ymd(2000, 1, 1), Day(0));
        assert_eq!(Day(0).ymd(), (2000, 1, 1));
    }

    #[test]
    fn known_dates_roundtrip() {
        for &(y, m, d) in &[
            (2008, 11, 1),
            (2019, 3, 31),
            (2016, 2, 29), // leap day
            (2000, 12, 31),
            (2017, 4, 15),
        ] {
            let day = Day::from_ymd(y, m, d);
            assert_eq!(day.ymd(), (y, m, d), "roundtrip {y}-{m}-{d}");
        }
    }

    #[test]
    fn ordering_follows_calendar() {
        assert!(Day::from_ymd(2008, 11, 1) < Day::from_ymd(2019, 3, 1));
        assert!(Day::from_ymd(2016, 1, 31) < Day::from_ymd(2016, 2, 1));
    }

    #[test]
    fn exhaustive_roundtrip_over_dataset_span() {
        // Every single day in the corpus span converts both ways exactly.
        let start = Day::from_ymd(2008, 1, 1);
        let end = Day::from_ymd(2020, 1, 1);
        for n in start.0..=end.0 {
            let (y, m, d) = Day(n).ymd();
            assert_eq!(Day::from_ymd(y, m, d), Day(n));
        }
    }

    #[test]
    fn month_index_is_monotone_across_years() {
        let dec = Day::from_ymd(2015, 12, 31);
        let jan = Day::from_ymd(2016, 1, 1);
        assert_eq!(dec.month_index() + 1, jan.month_index());
    }

    #[test]
    fn mm_yy_matches_paper_format() {
        assert_eq!(Day::from_ymd(2008, 11, 3).mm_yy(), "11/08");
        assert_eq!(Day::from_ymd(2017, 4, 20).mm_yy(), "04/17");
    }

    #[test]
    fn days_since_saturates() {
        let a = Day::from_ymd(2010, 1, 1);
        let b = Day::from_ymd(2010, 1, 11);
        assert_eq!(b.days_since(a), 10);
        assert_eq!(a.days_since(b), 0);
    }

    #[test]
    fn sample_between_is_inclusive() {
        let mut rng = rng_from_seed(3);
        let lo = Day::from_ymd(2012, 6, 1);
        let hi = Day::from_ymd(2012, 6, 3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let d = Day::sample_between(&mut rng, lo, hi);
            assert!(d >= lo && d <= hi);
            seen[(d.0 - lo.0) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all three days should be drawn");
    }

    #[test]
    #[should_panic(expected = "bad day")]
    fn rejects_nonexistent_date() {
        let _ = Day::from_ymd(2019, 2, 29);
    }

    #[test]
    fn display_is_iso() {
        assert_eq!(Day::from_ymd(2019, 3, 7).to_string(), "2019-03-07");
    }
}
