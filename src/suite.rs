//! Umbrella crate: runnable examples and cross-crate integration tests for
//! the *Measuring eWhoring* reproduction.
//!
//! The library surface is a thin convenience layer over the workspace
//! crates; see the examples in `examples/` for end-to-end usage:
//!
//! * `quickstart` — generate a world, run the full pipeline, print the
//!   headline numbers;
//! * `image_provenance` — the §4 image pipeline in isolation;
//! * `financial_profits` — the §5 earnings and currency-exchange analyses;
//! * `actor_analysis` — the §6 cohorts, key actors, and interests;
//! * `safety_pipeline` — the §4.3 screen-report-delete workflow.

pub use ewhoring_core as core;
pub use worldgen;

use ewhoring_core::pipeline::{Pipeline, PipelineOptions, PipelineReport};
use worldgen::{World, WorldConfig};

/// Generates a demo-sized world (~5% of paper scale) in a couple hundred
/// milliseconds — the fixture every example runs against.
pub fn demo_world(seed: u64) -> World {
    World::generate(demo_config(seed))
}

/// The configuration behind [`demo_world`].
pub fn demo_config(seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        scale: 0.05,
        origin_domains: 1_300,
        csam_images: 6,
        with_side_boards: true,
    }
}

/// Runs the full pipeline with example-friendly options.
pub fn demo_pipeline(world: &World) -> PipelineReport {
    Pipeline::new(PipelineOptions {
        k_key_actors: 12,
        ..PipelineOptions::default()
    })
    .run(world)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_world_is_example_sized() {
        let w = demo_world(42);
        assert!(w.corpus.posts().len() > 50_000);
        assert!(w.corpus.posts().len() < 400_000);
    }
}
