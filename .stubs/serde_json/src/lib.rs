//! Offline stand-in for `serde_json` over the stub `serde` value tree.
//! Self-consistent (round-trips its own output); NOT wire-compatible with
//! real serde_json — local testing only.

pub use serde::{Map, Value};

pub type Error = serde::Error;
pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    Ok(serde::render(&value.__to_value()))
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let v = value.__to_value();
    let mut out = String::new();
    pretty(&v, 0, &mut out);
    Ok(out)
}

pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.__to_value())
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(text: &'a str) -> Result<T> {
    let v = serde::parse(text)?;
    T::__from_value(&v)
}

pub fn from_value<T: for<'any> serde::Deserialize<'any>>(v: Value) -> Result<T> {
    T::__from_value(&v)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in m.iter().enumerate() {
                out.push_str(&pad);
                out.push_str(&serde::render(&Value::Str(k.clone())));
                out.push_str(": ");
                pretty(item, indent + 1, out);
                if i + 1 < m.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close);
            out.push('}');
        }
        other => out.push_str(&serde::render(other)),
    }
}
