//! Offline stand-in for `crossbeam` scoped threads: same `scope`/`spawn`/
//! `join` shape, built on `std::thread::scope`, so spawned closures run on
//! real OS threads and scale with the machine's cores. Results are
//! identical to serial execution for deterministic workloads that
//! reassemble worker output in input order (the `parkit` contract).

use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

/// A fork-join scope. Wraps [`std::thread::Scope`] so spawned closures may
/// borrow from the enclosing stack frame (everything outliving `'env`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` on a new OS thread. The closure receives the scope so
    /// workers can spawn nested workers, as in real crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to one spawned worker; `join` blocks until it finishes.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// Runs `f` with a scope; returns once every spawned thread has finished.
/// A panic escaping the scope body (e.g. an `expect` on a failed join) is
/// caught and surfaced as `Err`, matching crossbeam's signature.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}
