//! Offline stand-in for `crossbeam` scoped threads: same `scope`/`spawn`/
//! `join` shape, but closures run eagerly on the calling thread. Results
//! are identical to the threaded version for deterministic workloads.

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

pub struct Scope<'env> {
    _marker: PhantomData<&'env ()>,
}

impl<'env> Scope<'env> {
    pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<T>
    where
        F: FnOnce(&Scope<'env>) -> T + Send + 'env,
        T: Send + 'env,
    {
        ScopedJoinHandle {
            result: catch_unwind(AssertUnwindSafe(|| f(self))),
        }
    }
}

pub struct ScopedJoinHandle<T> {
    result: std::thread::Result<T>,
}

impl<T> ScopedJoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.result
    }
}

pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: FnOnce(&Scope<'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        f(&Scope {
            _marker: PhantomData,
        })
    }))
}
