//! Offline stand-in for `serde`: a value-tree serialization model with the
//! same *surface* (`Serialize`/`Deserialize` traits + derive macros), good
//! enough to run this workspace's JSON round-trips locally. Not remotely
//! wire-compatible with real serde — local testing only.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// Serialization error (shared by the `serde_json` stub).
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn err<T>(msg: impl Into<String>) -> Result<T, Error> {
    Err(Error(msg.into()))
}

/// An ordered JSON object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map(pub Vec<(String, Value)>);

impl Map {
    pub fn new() -> Map {
        Map(Vec::new())
    }

    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        self.0.push((key.into(), value));
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.0.iter().position(|(k, _)| k == key)?;
        Some(self.0.remove(idx).1)
    }

    pub fn iter(&self) -> impl Iterator<Item = &(String, Value)> {
        self.0.iter()
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i128),
    UInt(u128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(x) => Some(*x as f64),
            Value::UInt(x) => Some(*x as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(x) => u64::try_from(*x).ok(),
            Value::Int(x) => u64::try_from(*x).ok(),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render(self))
    }
}

// ---------------------------------------------------------------- traits

pub trait Serialize {
    fn __to_value(&self) -> Value;
}

pub trait Deserialize<'de>: Sized {
    fn __from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up and decodes a struct field (used by the derive macro).
pub fn __get<T>(m: &Map, key: &str) -> Result<T, Error>
where
    T: for<'any> Deserialize<'any>,
{
    match m.get(key) {
        Some(v) => T::__from_value(v),
        None => err(format!("missing field `{key}`")),
    }
}

// ------------------------------------------------------ primitive impls

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __to_value(&self) -> Value { Value::UInt(*self as u128) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn __from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(x) => <$t>::try_from(*x)
                        .map_err(|_| Error("uint out of range".into())),
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| Error("int out of range".into())),
                    _ => err(format!("expected uint, got {}", v.kind())),
                }
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __to_value(&self) -> Value { Value::Int(*self as i128) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn __from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| Error("int out of range".into())),
                    Value::UInt(x) => i128::try_from(*x)
                        .ok()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| Error("uint out of range".into())),
                    _ => err(format!("expected int, got {}", v.kind())),
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, i128, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn __from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error(format!("expected float, got {}", v.kind())))
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn __to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => err(format!("expected bool, got {}", v.kind())),
        }
    }
}

impl Serialize for char {
    fn __to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => err("expected single-char string"),
        }
    }
}

impl Serialize for String {
    fn __to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => err(format!("expected string, got {}", v.kind())),
        }
    }
}

impl Serialize for str {
    fn __to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// Stub-only: `&'static str` fields round-trip by leaking. Fine for local
// test runs, where static-str tables are never actually deserialized at
// scale.
impl<'de> Deserialize<'de> for &'static str {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => err(format!("expected string, got {}", v.kind())),
        }
    }
}

impl Serialize for () {
    fn __to_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => err("expected null"),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn __to_value(&self) -> Value {
        (**self).__to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn __to_value(&self) -> Value {
        (**self).__to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        T::__from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn __to_value(&self) -> Value {
        match self {
            Some(x) => x.__to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::__from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn __to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::__to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::__from_value).collect(),
            _ => err(format!("expected array, got {}", v.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn __to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::__to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn __to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::__to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::__from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error("array length mismatch".into()))
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn __to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.__to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn __from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error("expected tuple array".into()))?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return err("tuple arity mismatch");
                }
                Ok(($($name::__from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
ser_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

// ------------------------------------------------------------- map impls

fn key_string<K: Serialize>(key: &K) -> String {
    match key.__to_value() {
        Value::Str(s) => s,
        other => render(&other),
    }
}

fn key_value(key: &str) -> Value {
    parse(key).unwrap_or_else(|_| Value::Str(key.to_string()))
}

fn map_to_value<'a, K, V, I>(entries: I, sort: bool) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(String, Value)> = entries
        .map(|(k, v)| (key_string(k), v.__to_value()))
        .collect();
    if sort {
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
    }
    Value::Object(Map(pairs))
}

fn map_from_value<K, V>(v: &Value) -> Result<Vec<(K, V)>, Error>
where
    K: for<'any> Deserialize<'any>,
    V: for<'any> Deserialize<'any>,
{
    let obj = match v {
        Value::Object(m) => m,
        _ => return err(format!("expected object, got {}", v.kind())),
    };
    obj.iter()
        .map(|(k, v)| Ok((K::__from_value(&key_value(k))?, V::__from_value(v)?)))
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn __to_value(&self) -> Value {
        map_to_value(self.iter(), true)
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: for<'any> Deserialize<'any> + std::hash::Hash + Eq,
    V: for<'any> Deserialize<'any>,
    S: std::hash::BuildHasher + Default,
{
    fn __from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn __to_value(&self) -> Value {
        map_to_value(self.iter(), false)
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: for<'any> Deserialize<'any> + Ord,
    V: for<'any> Deserialize<'any>,
{
    fn __from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn __to_value(&self) -> Value {
        let mut rendered: Vec<Value> = self.iter().map(Serialize::__to_value).collect();
        rendered.sort_by_key(|v| render(v));
        Value::Array(rendered)
    }
}

impl<'de, T, S> Deserialize<'de> for HashSet<T, S>
where
    T: for<'any> Deserialize<'any> + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn __from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::__from_value(v)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn __to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::__to_value).collect())
    }
}

impl<'de, T> Deserialize<'de> for BTreeSet<T>
where
    T: for<'any> Deserialize<'any> + Ord,
{
    fn __from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::__from_value(v)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn __to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// --------------------------------------------------------- JSON encode

pub fn render(v: &Value) -> String {
    let mut out = String::new();
    render_into(v, &mut out);
    out
}

fn render_into(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"))
            } else {
                out.push_str("null")
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render_into(item, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------- JSON decode

pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = Parser { chars: &bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return err("trailing characters");
    }
    Ok(v)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, Error> {
        let c = self.peek().ok_or_else(|| Error("unexpected end".into()))?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), Error> {
        if self.bump()? == c {
            Ok(())
        } else {
            err(format!("expected `{c}`"))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| Error("unexpected end".into()))? {
            'n' => self.literal("null", Value::Null),
            't' => self.literal("true", Value::Bool(true)),
            'f' => self.literal("false", Value::Bool(false)),
            '"' => Ok(Value::Str(self.string()?)),
            '[' => self.array(),
            '{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16
                                + self
                                    .bump()?
                                    .to_digit(16)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return err(format!("bad escape `\\{other}`")),
                },
                c => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Ok(Value::Array(items)),
                _ => return err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect('{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            m.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Ok(Value::Object(m)),
                _ => return err("expected `,` or `}`"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some('0'..='9' | '-' | '+' | '.' | 'e' | 'E')
        ) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if text.is_empty() {
            return err("expected number");
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(x) = rest.parse::<i128>() {
                    return Ok(Value::Int(-x));
                }
            } else if let Ok(x) = text.parse::<u128>() {
                return Ok(Value::UInt(x));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}
