//! Offline stand-in for `bytes` (unused API surface in this workspace).

pub type Bytes = Vec<u8>;
