//! Offline stand-in for `proptest`. The `proptest!` macro expands to
//! nothing, so property bodies are *not exercised locally* — they only
//! need to exist for the real environment. Strategy combinators used
//! outside the macro typecheck against a minimal `Strategy` trait.

pub mod strategy {
    use std::marker::PhantomData;

    pub trait Strategy {
        type Value;
    }

    pub struct Just<T>(pub T);

    impl<T> Strategy for Just<T> {
        type Value = T;
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T> Strategy for Any<T> {
        type Value = T;
    }

    pub struct OneOf<T> {
        pub strategies: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
    }

    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    impl<T> Strategy for std::ops::Range<T> {
        type Value = T;
    }

    impl<T> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
    }
}

#[derive(Debug, Clone, Default)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

#[macro_export]
macro_rules! proptest {
    ($($tt:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => {};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            strategies: vec![$($crate::strategy::boxed({ let _ = $weight; $strat })),+],
        }
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            strategies: vec![$($crate::strategy::boxed($strat)),+],
        }
    };
}

pub mod prelude {
    pub use crate::strategy::{any, boxed, Just, OneOf, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
