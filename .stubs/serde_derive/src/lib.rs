//! Offline stand-in for `serde_derive`: hand-rolled (no `syn`) derive of
//! the stub `serde::Serialize` / `serde::Deserialize` traits. Supports
//! non-generic structs (named / tuple / unit) and enums (unit / tuple /
//! struct variants). `#[serde(...)]` attributes are accepted and ignored —
//! encodings only need to round-trip against themselves locally.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    body.parse().expect("serde stub: emitted invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    body.parse().expect("serde stub: emitted invalid Deserialize impl")
}

// ------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos);
    skip_vis(&tokens, &mut pos);
    let kind = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde stub derive: generics are not supported (type `{name}`)");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let group = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("serde stub derive: malformed enum `{name}`"),
            };
            Item::Enum {
                name,
                variants: parse_variants(group),
            }
        }
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match (tokens.get(*pos), tokens.get(*pos + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *pos += 2;
            }
            _ => return,
        }
    }
}

fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde stub derive: expected identifier, got {other:?}"),
    }
}

/// Parses `name: Type, ...` skipping attributes, visibility, and types
/// (angle-bracket aware so `Map<K, V>` commas don't split fields).
fn parse_named_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut names = Vec::new();
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        skip_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        names.push(expect_ident(&tokens, &mut pos));
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde stub derive: expected `:` after field, got {other:?}"),
        }
        let mut depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    Fields::Named(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for (i, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if i + 1 == tokens.len() {
                    trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                parse_named_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separator.
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ------------------------------------------------------------ emission

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::__to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::__to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(names) => named_to_object(names, "self."),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn __to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_to_object(names: &[String], prefix: &str) -> String {
    let mut out = String::from("{ let mut m = ::serde::Map::new(); ");
    for f in names {
        let _ = write!(
            out,
            "m.insert(\"{f}\", ::serde::Serialize::__to_value(&{prefix}{f})); "
        );
    }
    out.push_str("::serde::Value::Object(m) }");
    out
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::__from_value(v)?))"
        ),
        Fields::Tuple(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::__from_value(&arr[{i}])?"))
                .collect();
            format!(
                "{{ let arr = v.as_array().ok_or_else(|| ::serde::Error(\
                     \"expected array for {name}\".to_string()))?;\n\
                   if arr.len() != {n} {{ return ::serde::err(\"arity mismatch for {name}\"); }}\n\
                   ::std::result::Result::Ok({name}({gets})) }}",
                gets = gets.join(", ")
            )
        }
        Fields::Named(names) => {
            let gets: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::__get(obj, \"{f}\")?"))
                .collect();
            format!(
                "{{ let obj = v.as_object().ok_or_else(|| ::serde::Error(\
                     \"expected object for {name}\".to_string()))?;\n\
                   ::std::result::Result::Ok({name} {{ {gets} }}) }}",
                gets = gets.join(", ")
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn __from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                let _ = write!(
                    arms,
                    "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                );
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::__to_value(x0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::__to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                let _ = write!(
                    arms,
                    "{name}::{vn}({binds}) => {{ let mut m = ::serde::Map::new(); \
                       m.insert(\"{vn}\", {inner}); ::serde::Value::Object(m) }}\n",
                    binds = binds.join(", ")
                );
            }
            Fields::Named(fields) => {
                let binds = fields.join(", ");
                let inner = named_to_object(fields, "");
                let _ = write!(
                    arms,
                    "{name}::{vn} {{ {binds} }} => {{ let mut m = ::serde::Map::new(); \
                       m.insert(\"{vn}\", {inner}); ::serde::Value::Object(m) }}\n"
                );
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn __to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}\n}}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                let _ = write!(
                    unit_arms,
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                );
            }
            Fields::Tuple(1) => {
                let _ = write!(
                    data_arms,
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                       ::serde::Deserialize::__from_value(inner)?)),\n"
                );
            }
            Fields::Tuple(n) => {
                let gets: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::__from_value(&arr[{i}])?"))
                    .collect();
                let _ = write!(
                    data_arms,
                    "\"{vn}\" => {{ let arr = inner.as_array().ok_or_else(|| ::serde::Error(\
                        \"expected array for {name}::{vn}\".to_string()))?;\n\
                      if arr.len() != {n} {{ return ::serde::err(\"arity mismatch\"); }}\n\
                      ::std::result::Result::Ok({name}::{vn}({gets})) }}\n",
                    gets = gets.join(", ")
                );
            }
            Fields::Named(fields) => {
                let gets: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::__get(obj, \"{f}\")?"))
                    .collect();
                let _ = write!(
                    data_arms,
                    "\"{vn}\" => {{ let obj = inner.as_object().ok_or_else(|| ::serde::Error(\
                        \"expected object for {name}::{vn}\".to_string()))?;\n\
                      ::std::result::Result::Ok({name}::{vn} {{ {gets} }}) }}\n",
                    gets = gets.join(", ")
                );
            }
        }
    }
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn __from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::serde::err(format!(\"unknown variant `{{other}}` of {name}\")),\n\
                     }},\n\
                     ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                         let (k, inner) = &m.0[0];\n\
                         match k.as_str() {{\n\
                             {data_arms}\n\
                             other => ::serde::err(format!(\"unknown variant `{{other}}` of {name}\")),\n\
                         }}\n\
                     }}\n\
                     _ => ::serde::err(\"expected string or 1-key object for enum {name}\"),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
