//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! Functional: a deterministic xoshiro256++ `StdRng`, `SeedableRng`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::shuffle`.
//! Streams differ from upstream `rand`, but are deterministic and
//! statistically reasonable, which is all local testing needs.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut sm = splitmix64(state);
        let mut i = 0;
        while i < bytes.len() {
            let (word, next) = sm;
            sm = splitmix64(next);
            for (j, b) in word.to_le_bytes().iter().enumerate() {
                if i + j < bytes.len() {
                    bytes[i + j] = *b;
                }
            }
            i += 8;
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: u64) -> (u64, u64) {
    let next = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = next;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31), next)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — deterministic, fast, good-quality.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0xB0BA_FE77, 0x1234_5678];
            }
            StdRng { s }
        }
    }
}

/// Types drawable via `Rng::gen`.
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "empty range in gen_range");
                // The draw is always a full 128-bit sample reduced mod
                // `span` (two `next_u64` calls, high word first). For
                // spans fitting u32 the reduction runs in u64 words —
                // (hi·2^64 + lo) mod m == ((hi mod m)·(2^64 mod m)
                // + lo mod m) mod m, with every intermediate < 2^64 —
                // which sidesteps the slow 128-bit division intrinsic
                // while producing the identical value.
                let draw = if span <= u32::MAX as u128 {
                    let m = span as u64;
                    let hi64 = rng.next_u64();
                    let lo64 = rng.next_u64();
                    let r2_64 = (u64::MAX % m).wrapping_add(1) % m; // 2^64 mod m
                    (((hi64 % m) * r2_64 + lo64 % m) % m) as u128
                } else {
                    <u128 as StandardSample>::standard_sample(rng) % span
                };
                (lo_w + draw as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges accepted by `gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as StandardSample>::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng, StandardSample};

    /// The u64-word reduction for small spans must draw exactly what the
    /// 128-bit reduction draws, for every span class and sign mix.
    #[test]
    fn small_span_fast_path_matches_u128_reduction() {
        let mut fast = StdRng::seed_from_u64(0x5EED);
        let mut slow = fast.clone();
        for span in [1u128, 2, 7, 31, 255, 4096, 65_537, u32::MAX as u128] {
            for _ in 0..64 {
                let got = fast.gen_range(0..span as u64);
                let want = (<u128 as StandardSample>::standard_sample(&mut slow) % span) as u64;
                assert_eq!(got, want, "span {span}");
            }
        }
        // Signed, inclusive range as the render hot loops use it.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = a.clone();
        for _ in 0..256 {
            let got = a.gen_range(-12i16..=12);
            let hi = u128::from(b.next_u64());
            let lo = u128::from(b.next_u64());
            let want = -12i128 + (((hi << 64) | lo) % 25) as i128;
            assert_eq!(i128::from(got), want);
        }
    }
}
