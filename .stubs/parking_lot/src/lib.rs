//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives with
//! parking_lot's panic-free, non-poisoning API shape.

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
