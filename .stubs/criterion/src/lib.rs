//! Offline stand-in for `criterion`: same macro/builder surface, runs each
//! benchmark closure once (a smoke test, not a measurement).

pub use std::hint::black_box;

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("[criterion stub] group {name}");
        BenchmarkGroup {
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("[criterion stub] bench {name}");
        body(&mut Bencher);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<N: std::fmt::Display, F>(&mut self, name: N, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("[criterion stub] bench {name}");
        body(&mut Bencher);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        black_box(body());
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
