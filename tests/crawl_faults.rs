//! Fault-injected crawling: the pipeline must survive transient failures
//! (timeouts, 429s, 5xx, truncated archives) without aborting, reproduce
//! identical results and stats from the same seed, and — with faults
//! disabled — behave byte-identically to a plain crawl.

use ewhoring_core::crawl::{crawl_links_with_faults, crawl_tops_with_faults, RetryPolicy};
use ewhoring_core::pipeline::{Pipeline, PipelineOptions};
use ewhoring_core::report::full_report;
use websim::{FaultPlan, FetchOutcome};
use worldgen::{ThreadRole, World, WorldConfig};

fn world_and_tops(seed: u64) -> (World, Vec<crimebb::ThreadId>) {
    let w = World::generate(WorldConfig::test_scale(seed));
    let mut tops: Vec<crimebb::ThreadId> = w
        .truth
        .thread_roles
        .iter()
        .filter(|&(_, &r)| r == ThreadRole::Top)
        .map(|(&t, _)| t)
        .collect();
    tops.sort_unstable();
    (w, tops)
}

/// The determinism regression the tentpole demands: two runs with the
/// same seed and the same `FaultPlan` produce identical `CrawlResult`
/// and `CrawlStats`, compared as serialized bytes.
#[test]
fn same_seed_same_plan_identical_result_and_stats() {
    let (w, tops) = world_and_tops(0xFA57);
    let run = |severity: f64| {
        crawl_tops_with_faults(
            &w.corpus,
            &w.catalog,
            &w.web,
            &tops,
            &FaultPlan::with_severity(0x5EED, severity),
            &RetryPolicy::default(),
        )
    };
    for severity in [0.0, 0.5, 1.0, 3.0] {
        let (ra, sa) = run(severity);
        let (rb, sb) = run(severity);
        assert_eq!(
            serde_json::to_string(&ra).unwrap().into_bytes(),
            serde_json::to_string(&rb).unwrap().into_bytes(),
            "CrawlResult diverged at severity {severity}"
        );
        assert_eq!(
            serde_json::to_string(&sa).unwrap().into_bytes(),
            serde_json::to_string(&sb).unwrap().into_bytes(),
            "CrawlStats diverged at severity {severity}"
        );
    }
}

/// Faults-disabled output must match the pre-change crawl semantics: a
/// reference crawler that calls `WebStore::fetch` once per link (exactly
/// what `crawl_links` did before the resilience layer) agrees with the
/// fault-aware path on every outcome.
#[test]
fn disabled_faults_match_single_fetch_reference() {
    let (w, tops) = world_and_tops(0xFA58);
    let whitelist = ewhoring_core::crawl::snowball_whitelist(&w.corpus, &w.catalog, &tops);
    let (links, _) = ewhoring_core::crawl::extract_links(&w.corpus, &w.catalog, &whitelist, &tops);

    // Reference: the pre-resilience semantics, one plain fetch per link.
    let (mut previews, mut packs, mut dead, mut blocked) = (0usize, 0usize, 0usize, 0usize);
    for link in &links {
        match w.web.fetch(&w.catalog, &link.url) {
            FetchOutcome::Image(_) | FetchOutcome::RemovalBanner(_) => previews += 1,
            FetchOutcome::Pack(_) => packs += 1,
            FetchOutcome::NotFound => dead += 1,
            FetchOutcome::RegistrationRequired => blocked += 1,
        }
    }

    let (r, stats) = crawl_links_with_faults(
        &w.catalog,
        &w.web,
        links,
        &FaultPlan::disabled(),
        &RetryPolicy::default(),
    );
    assert_eq!(r.previews.len(), previews);
    assert_eq!(r.packs.len(), packs);
    assert_eq!(r.dead_links, dead);
    assert_eq!(r.registration_blocked, blocked);
    assert_eq!(r.unreachable_links, 0);
    assert_eq!(stats.retries.total(), 0);
    assert_eq!(stats.wait_us.total(), 0);
}

/// End-to-end: with fault injection enabled at a nonzero rate the whole
/// pipeline completes, reports retries (and deterministically identical
/// stats across runs), and the report renders.
#[test]
fn pipeline_with_faults_completes_and_reproduces() {
    let world = World::generate(WorldConfig::test_scale(0xFA59));
    let opts = PipelineOptions {
        k_key_actors: 8,
        fault_severity: 1.0,
        ..PipelineOptions::default()
    };
    let a = Pipeline::new(opts).run(&world);
    let b = Pipeline::new(opts).run(&world);

    assert!(a.crawl_stats.retries.total() > 0, "no retries recorded");
    assert!(a.crawl_stats.wait_us.total() > 0, "no waits simulated");
    assert!(
        a.funnel.preview_downloads > 0,
        "calibrated faults must not kill the crawl"
    );
    assert_eq!(
        serde_json::to_string(&a.crawl_stats).unwrap(),
        serde_json::to_string(&b.crawl_stats).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&a.crawl).unwrap(),
        serde_json::to_string(&b.crawl).unwrap()
    );
    let text = full_report(&a);
    assert!(text.contains("crawler health"));
}

/// The zero-success satellite: when every live host is down, the crawl
/// stage yields zero downloads, every downstream stage accepts the empty
/// artifacts, `run_prefix` never panics, and the report renders with
/// zeroed image sections.
#[test]
fn total_outage_pipeline_degrades_to_zero_images() {
    let world = World::generate(WorldConfig::test_scale(0xFA5A));
    let opts = PipelineOptions {
        k_key_actors: 5,
        fault_severity: 1e9,
        ..PipelineOptions::default()
    };

    // Prefix through the crawl stage first: zero successes, no panic.
    let pipe = Pipeline::new(opts);
    let ctx = pipe.run_prefix(&world, 3).expect("prefix runs");
    let crawl = ctx.crawl().expect("crawl artifact");
    assert!(crawl.previews.is_empty(), "outage leaves no previews");
    assert!(crawl.packs.is_empty(), "outage leaves no packs");
    assert!(crawl.unreachable_links > 0);
    let stats = ctx.crawl_stats().expect("crawl stats artifact");
    assert!(stats.breaker_trips > 0, "outage trips breakers");

    // Then the full graph: downstream stages get empty artifacts.
    let report = pipe.run(&world);
    assert_eq!(report.funnel.preview_downloads, 0);
    assert_eq!(report.funnel.packs_downloaded, 0);
    assert_eq!(report.funnel.unique_files, 0);
    assert_eq!(report.safety.stage.summary.matched_cases, 0);
    assert_eq!(report.provenance.packs.total, 0);
    assert_eq!(report.provenance.previews.total, 0);

    // The text report renders the zeroed image sections.
    let text = full_report(&report);
    assert!(text.contains("Table 5"));
    assert!(text.contains("breaker trips"));
}
