//! Supervised shard execution observed through the public pipeline
//! surface: restart recovery must be invisible in the report, and a
//! shard that exhausts its restart budget must degrade into the
//! quarantine ledger and pipeline-health section — deterministically —
//! instead of failing the run.

use ewhoring_core::pipeline::{
    snapshot_json, Pipeline, PipelineOptions, RecordErrorKind, ShardPoison, StageStatus,
};

fn snapshot(report: &ewhoring_core::PipelineReport) -> String {
    snapshot_json(report).expect("snapshot renders")
}

fn options(shards: usize, workers: usize, poison: Option<ShardPoison>) -> PipelineOptions {
    PipelineOptions {
        k_key_actors: 12,
        workers,
        shards,
        poison,
        ..PipelineOptions::default()
    }
}

/// A shard that panics within its restart budget is restarted and the
/// run's artifacts are byte-identical to the unsharded driver — the
/// only trace is the supervision counters, which the snapshot strips.
#[test]
fn restarted_shard_leaves_no_trace_in_the_report() {
    let world = ewhoring_suite::demo_world(0x5AD);
    let clean = Pipeline::new(options(0, 1, None)).run(&world);
    // Two panics, budget of two restarts: attempt 2 succeeds.
    let poison = ShardPoison {
        shard: 1,
        panics: 2,
        severity: 0.0,
    };
    let recovered = Pipeline::new(options(3, 1, Some(poison))).run(&world);
    assert_eq!(
        snapshot(&recovered).as_bytes(),
        snapshot(&clean).as_bytes(),
        "a recovered shard must not change the report"
    );
    let s = recovered.supervision;
    assert_eq!(
        s.shards_run, 6,
        "3 shards through 2 supervised rounds (survey + tokenize)"
    );
    assert_eq!(s.shards_restarted, 1, "only the poisoned shard restarted");
    assert_eq!(s.shards_quarantined, 0);
    assert!(
        recovered
            .quarantine
            .entries()
            .iter()
            .all(|e| e.stage != "shard"),
        "recovery must not reach the quarantine ledger"
    );
}

/// A shard whose every attempt fails (severity >= 1.0) exhausts the
/// restart budget and is quarantined: the run still completes, the
/// lost partition is named in the quarantine ledger, the health
/// section records a `Degraded` event, and the whole degraded report
/// is byte-identical across worker counts.
#[test]
fn budget_exhausted_shard_degrades_deterministically() {
    let world = ewhoring_suite::demo_world(0x5AD);
    let poison = ShardPoison {
        shard: 1,
        panics: 0,
        severity: 1.0,
    };
    let run = |workers: usize| Pipeline::new(options(4, workers, Some(poison))).run(&world);
    let degraded = run(1);

    // The run completed and the ledger names the lost partition.
    let entry = degraded
        .quarantine
        .entries()
        .iter()
        .find(|e| e.stage == "shard")
        .expect("quarantine ledger carries the lost shard");
    assert_eq!(entry.record, "shard/1");
    assert_eq!(entry.kind, RecordErrorKind::ShardFailure);

    // The pipeline-health section records the degradation, including
    // the consumed attempt budget (max_restarts 2 => 3 attempts).
    let health = degraded
        .health
        .iter()
        .find(|h| h.stage == "shard")
        .expect("health section carries the shard event");
    assert_eq!(health.status, StageStatus::Degraded);
    assert!(
        health.detail.contains("after 3 attempts"),
        "detail names the spent budget: {}",
        health.detail
    );

    let s = degraded.supervision;
    assert_eq!(s.shards_quarantined, 1);
    assert_eq!(s.shards_run, 8, "4 shards through 2 supervised rounds");

    // Degradation is real: the lost partition's forums are missing, so
    // the report differs from a clean run…
    let clean = Pipeline::new(options(0, 1, None)).run(&world);
    assert_ne!(
        snapshot(&degraded),
        snapshot(&clean),
        "a quarantined shard must actually drop its partition"
    );
    // …but deterministically so: the degraded report is byte-identical
    // across worker counts.
    assert_eq!(
        snapshot(&degraded).as_bytes(),
        snapshot(&run(7)).as_bytes(),
        "degraded report diverged across worker counts"
    );
}
