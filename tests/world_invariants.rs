//! Ground-truth / world consistency invariants: everything the generator
//! claims to have planted must actually exist in the world, wired the way
//! the pipeline expects to find it.

use std::collections::HashSet;
use worldgen::{PackKind, ThreadRole, World};

fn world() -> World {
    ewhoring_suite::demo_world(0x1417A)
}

#[test]
fn every_pack_record_is_hosted_and_attributed() {
    let w = world();
    for rec in &w.truth.packs {
        let entry = w.web.entry(&rec.url).expect("pack URL is hosted");
        match &entry.object {
            websim::HostedObject::Pack { images } => {
                assert_eq!(images.len() as u32, rec.n_images, "{:?}", rec.url);
                assert!(!images.is_empty());
            }
            other => panic!("pack URL hosts {other:?}"),
        }
        assert_eq!(entry.uploaded, rec.posted);
        // The thread exists, is a TOP, and its author matches the record.
        assert_eq!(w.truth.role(rec.thread), Some(ThreadRole::Top));
        assert_eq!(w.corpus.thread(rec.thread).author, rec.actor);
    }
}

#[test]
fn pack_urls_appear_in_their_threads_posts() {
    let w = world();
    for rec in w.truth.packs.iter().take(60) {
        let mut found = false;
        for &p in w.corpus.posts_in_thread(rec.thread) {
            if w.corpus.post(p).body.contains(&rec.url.to_https()) {
                found = true;
                break;
            }
        }
        assert!(found, "pack URL not posted in thread {:?}", rec.thread);
    }
}

#[test]
fn csam_truth_is_internally_consistent() {
    let w = world();
    assert_eq!(w.truth.csam_specs.len() as u32, w.config.csam_images);
    assert_eq!(w.hashlist.len(), w.truth.csam_specs.len());
    // Every planted thread is a TOP with a hosted pack containing a
    // planted spec.
    let planted: HashSet<_> = w.truth.csam_specs.iter().collect();
    for &t in &w.truth.csam_threads {
        assert_eq!(w.truth.role(t), Some(ThreadRole::Top));
        let has_planted_pack = w.truth.packs.iter().any(|rec| {
            rec.thread == t
                && w.web.entry(&rec.url).is_some_and(|e| {
                    matches!(&e.object, websim::HostedObject::Pack { images }
                        if images.iter().any(|img| planted.contains(&img.spec)))
                })
        });
        assert!(has_planted_pack, "thread {t} lacks planted material");
    }
}

#[test]
fn proof_truth_matches_hosted_screenshots() {
    let w = world();
    assert!(!w.truth.proof_info.is_empty());
    for (spec, info) in w.truth.proof_info.iter().take(200) {
        assert!(spec.class.is_textual(), "proofs are screenshots");
        assert!(info.amount > 0.0);
        if let Some(tx) = info.transactions {
            assert!(tx >= 1);
        }
        // The USD value at the screenshot date is finite and positive.
        let usd = w.fx.to_usd(info.amount, info.currency, info.taken);
        assert!(usd.is_finite() && usd > 0.0);
    }
    // Per-actor planted earnings equal the sum of their proof records.
    let mut sums: std::collections::HashMap<crimebb::ActorId, f64> =
        std::collections::HashMap::new();
    for info in w.truth.proof_info.values() {
        let usd = w.fx.to_usd(info.amount, info.currency, info.taken);
        *sums.entry(info.actor).or_insert(0.0) += usd;
    }
    for (actor, total) in &w.truth.earnings_by_actor {
        let s = sums.get(actor).copied().unwrap_or(0.0);
        assert!(
            (s - total).abs() < 1.0,
            "{actor}: proofs sum {s} vs planted {total}"
        );
    }
}

#[test]
fn proof_posts_contain_proof_urls() {
    let w = world();
    assert!(!w.truth.proof_posts.is_empty());
    for &p in w.truth.proof_posts.iter().take(100) {
        assert!(w.corpus.post(p).body.contains("Proof:"));
    }
}

#[test]
fn zero_match_pack_kinds_cannot_be_reverse_found() {
    let w = world();
    let mut checked = 0;
    for rec in &w.truth.packs {
        if !matches!(rec.kind, PackKind::SelfMade) {
            continue;
        }
        if let Some(websim::HostedObject::Pack { images }) =
            w.web.entry(&rec.url).map(|e| &e.object)
        {
            for img in images.iter().take(3) {
                if img.spec.model >= 9_000_000 {
                    continue; // planted hash-list material is indexed
                }
                let m = imagesim::RobustHash::of(&img.render());
                assert!(
                    w.index.query(&m).is_empty(),
                    "self-made image found on the web: {:?}",
                    img.spec
                );
                checked += 1;
            }
        }
        if checked > 30 {
            break;
        }
    }
    assert!(checked > 0, "no self-made packs to check");
}

#[test]
fn index_dates_never_exceed_dataset_end() {
    let w = world();
    let end = w.config.dataset_end();
    for i in 0..w.index.len() {
        assert!(w.index.entry(i as u32).crawled <= end);
    }
}

#[test]
fn thread_roles_cover_exactly_the_ewhoring_threads() {
    let w = world();
    let extracted: HashSet<_> = ewhoring_core::extract::extract_ewhoring_threads(&w.corpus)
        .all_threads()
        .into_iter()
        .collect();
    // Every extracted thread has a role; roles also cover Bragging Rights
    // threads (harvested via board membership, not the keyword query).
    let mut missing = 0;
    for &t in &extracted {
        if w.truth.role(t).is_none() {
            missing += 1;
        }
    }
    assert_eq!(missing, 0, "{missing} extracted threads lack roles");
}
