//! Shape calibration against the paper's published numbers.
//!
//! Absolute counts scale with the world size; what must *hold* at any
//! scale are the paper's shapes: who dominates, which direction trends
//! point, and roughly what the key rates are. Tolerances are generous —
//! these are measurements over a random world, not fixture look-ups.

use std::sync::OnceLock;

fn fixture() -> &'static (worldgen::World, ewhoring_core::PipelineReport) {
    static FIX: OnceLock<(worldgen::World, ewhoring_core::PipelineReport)> = OnceLock::new();
    FIX.get_or_init(|| {
        let world = ewhoring_suite::demo_world(0xCA1B);
        let report = ewhoring_suite::demo_pipeline(&world);
        (world, report)
    })
}

#[test]
fn hackforums_dominates_table1() {
    let (_, r) = fixture();
    let mut rows = r.forums.clone();
    rows.sort_by_key(|f| std::cmp::Reverse(f.threads));
    assert_eq!(rows[0].forum, "Hackforums");
    // Paper: HF holds ~95% of threads and ~88% of actors.
    let total: usize = rows.iter().map(|f| f.threads).sum();
    let share = rows[0].threads as f64 / total as f64;
    assert!(share > 0.85, "HF thread share {share}");
    assert_eq!(rows[0].first_post, "11/08");
}

#[test]
fn classifier_operating_point_matches_paper() {
    let (_, r) = fixture();
    let m = r.topcls.hybrid_metrics;
    // Paper: P 0.92 / R 0.93 / F1 0.92.
    assert!((0.72..=1.0).contains(&m.precision), "P {}", m.precision);
    assert!((0.85..=1.0).contains(&m.recall), "R {}", m.recall);
    assert!(m.f1 > 0.8, "F1 {}", m.f1);
    // Union exceeds either side and both sides contribute.
    assert!(r.topcls.detected.len() > r.topcls.ml_count.max(r.topcls.heuristic_count));
}

#[test]
fn host_mix_matches_tables_3_and_4() {
    let (_, r) = fixture();
    let top_image = r.crawl.image_links_by_site.iter().max_by_key(|&(_, &c)| c);
    let top_cloud = r.crawl.cloud_links_by_site.iter().max_by_key(|&(_, &c)| c);
    assert_eq!(top_image.unwrap().0, "imgur.com");
    assert_eq!(top_cloud.unwrap().0, "mediafire.com");
    // imgur carries roughly half of preview links (paper: 3297/6720).
    let total: usize = r.crawl.image_links_by_site.values().sum();
    let imgur = r.crawl.image_links_by_site["imgur.com"] as f64 / total as f64;
    assert!((0.35..0.65).contains(&imgur), "imgur share {imgur}");
}

#[test]
fn reverse_search_shape_matches_table5() {
    let (_, r) = fixture();
    let packs = &r.provenance.packs;
    let previews = &r.provenance.previews;
    // Paper: packs 74% matched vs previews 49% — previews are harder.
    assert!(
        packs.match_rate() > previews.match_rate(),
        "pack {} vs preview {}",
        packs.match_rate(),
        previews.match_rate()
    );
    assert!((0.55..0.92).contains(&packs.match_rate()));
    assert!((0.30..0.70).contains(&previews.match_rate()));
    // But matched previews appear on more sites (17.3 vs 12.7).
    assert!(
        previews.ratio > packs.ratio,
        "ratios {} vs {}",
        previews.ratio,
        packs.ratio
    );
    // Seen-before below match rate, in the paper's band.
    assert!(packs.seen_before_rate() < packs.match_rate());
    assert!(packs.seen_before_rate() > 0.35);
}

#[test]
fn zero_match_packs_exist_and_concentrate() {
    let (_, r) = fixture();
    let share = r.provenance.zero_match_packs as f64 / r.provenance.analysed_packs.max(1) as f64;
    // Paper: 203/1255 ≈ 16%.
    assert!((0.03..0.40).contains(&share), "zero-match share {share}");
    let (zero, total) = r.provenance.top_zero_match_actor;
    // Paper: one actor with 47 zero-match of 100 shared packs.
    assert!(zero >= 1 && zero <= total);
}

#[test]
fn porn_tags_dominate_every_domain_classifier() {
    let (_, r) = fixture();
    assert_eq!(r.provenance.domain_tags.len(), 3);
    for table in &r.provenance.domain_tags {
        let total: usize = table.tags.iter().map(|&(_, c)| c).sum();
        let adult: usize = table
            .tags
            .iter()
            .filter(|(t, _)| {
                let t = t.to_lowercase();
                t.contains("porn")
                    || t.contains("adult")
                    || t.contains("sex")
                    || t.contains("nudity")
                    || t.contains("lingerie")
                    || t.contains("provocative")
            })
            .map(|&(_, c)| c)
            .sum();
        let share = adult as f64 / total.max(1) as f64;
        assert!(
            share > 0.25,
            "{}: adult tag share {share}",
            table.classifier
        );
    }
}

#[test]
fn earnings_match_section5_shape() {
    let (_, r) = fixture();
    let e = &r.earnings;
    assert!(e.actors >= 10);
    // Heavy tail: max far above the mean; median below the mean.
    assert!(e.max_per_actor > 2.0 * e.mean_per_actor);
    let median = {
        let mut usd: Vec<f64> = e.per_actor.iter().map(|&(u, _)| u).collect();
        usd.sort_by(|a, b| a.partial_cmp(b).unwrap());
        usd[usd.len() / 2]
    };
    assert!(
        median < e.mean_per_actor,
        "median {median} < mean {}",
        e.mean_per_actor
    );
    // Paper: avg transaction ≈ $41.90.
    assert!((20.0..70.0).contains(&e.avg_transaction_usd));
    // AGC + PayPal dominate (paper: 934 + 795 of 1868).
    let agc = e.platform_counts.get("AGC").copied().unwrap_or(0);
    let pp = e.platform_counts.get("PayPal").copied().unwrap_or(0);
    let total: usize = e.platform_counts.values().sum();
    assert!((agc + pp) as f64 / total as f64 > 0.75);
}

#[test]
fn currency_exchange_matches_table7_shape() {
    let (_, r) = fixture();
    let c = &r.currency;
    let btc_wanted = c.wanted.get("BTC").copied().unwrap_or(0);
    let max_wanted = c.wanted.values().copied().max().unwrap_or(0);
    assert_eq!(btc_wanted, max_wanted, "BTC most wanted: {:?}", c.wanted);
    let agc_off = c.offered.get("AGC").copied().unwrap_or(0);
    let agc_want = c.wanted.get("AGC").copied().unwrap_or(0);
    assert!(agc_off > 2 * agc_want.max(1), "AGC offered ≫ wanted");
}

#[test]
fn cohorts_match_table8_shape() {
    let (_, r) = fixture();
    let t = &r.cohorts;
    // ~80% below 10 posts.
    let small = 1.0 - t[1].actors as f64 / t[0].actors as f64;
    assert!((0.7..0.95).contains(&small), "small share {small}");
    // Percentage eWhoring rises with engagement (paper 23.3 → 40.6 at ≥500).
    assert!(t[2].pct_ewhoring > t[0].pct_ewhoring);
    // Days-before ~ months (paper 165.3).
    assert!((60.0..340.0).contains(&t[0].days_before));
}

#[test]
fn interests_shift_from_gaming_to_market() {
    let (_, r) = fixture();
    let get = |cat: &str| {
        r.interests
            .shares
            .iter()
            .find(|(c, ..)| c == cat)
            .map(|&(_, b, d, a)| (b, d, a))
    };
    let (gb, gd, _) = get("Gaming").expect("gaming share");
    let (hb, hd, _) = get("Hacking").expect("hacking share");
    let (mb, md, ma) = get("Market").expect("market share");
    assert!(gb > gd, "gaming declines: {gb} → {gd}");
    assert!(hb > hd, "hacking declines: {hb} → {hd}");
    assert!(md > mb && ma > mb, "market rises: {mb} → {md} → {ma}");
}

#[test]
fn safety_matches_section43_shape() {
    let (world, r) = fixture();
    let s = &r.safety;
    // Matches found, all genuine, with more actioned URLs than images
    // (reverse search located extra copies), and repliers counted.
    assert!(s.stage.summary.matched_cases >= 1);
    assert!(s.stage.summary.matched_cases <= world.truth.csam_specs.len());
    assert!(s.actors_in_flagged_threads >= s.stage.flagged_threads.len());
    assert!(s.stage.summary.total_reports >= s.stage.summary.actioned_urls);
}
