//! Property-based tests over the substrate crates (proptest).

use imagesim::{content_digest, ImageClass, ImageSpec, RobustHash, Transform};
use proptest::prelude::*;
use synthrand::Day;
use textkit::hw::parse_hw_heading;
use textkit::url::{extract_urls, registered_domain};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any text round-trips URL extraction: embedding a well-formed URL
    /// into arbitrary prose always recovers exactly that URL.
    #[test]
    fn url_extraction_recovers_embedded_url(
        prefix in "[a-zA-Z .,!]{0,40}",
        host in "[a-z]{2,10}\\.(com|net|example)",
        path in "/[a-zA-Z0-9/_-]{1,24}",
        suffix in "[a-zA-Z .,!]{0,40}",
    ) {
        let text = format!("{prefix} https://{host}{path} {suffix}");
        let urls = extract_urls(&text);
        prop_assert_eq!(urls.len(), 1);
        prop_assert_eq!(urls[0].host.as_str(), host.as_str());
        prop_assert_eq!(urls[0].path.as_str(), path.as_str());
    }

    /// Registered-domain grouping strips any subdomain depth.
    #[test]
    fn registered_domain_keeps_last_two_labels(
        subs in prop::collection::vec("[a-z]{1,8}", 0..4),
        base in "[a-z]{2,10}",
        tld in "(com|net|org)",
    ) {
        let host = if subs.is_empty() {
            format!("{base}.{tld}")
        } else {
            format!("{}.{base}.{tld}", subs.join("."))
        };
        prop_assert_eq!(registered_domain(&host), format!("{base}.{tld}"));
    }

    /// Civil-date round trip over the whole simulation era.
    #[test]
    fn day_roundtrips(n in 0u32..8000) {
        let d = Day(n);
        let (y, m, dd) = d.ymd();
        prop_assert_eq!(Day::from_ymd(y, m, dd), d);
        prop_assert!(d.plus_days(1) > d);
    }

    /// The robust hash is invariant to identity and involutive mirroring.
    #[test]
    fn mirror_twice_restores_hash(model in 1u32..500, variant in 0u64..500) {
        let bmp = ImageSpec::model_photo(ImageClass::ModelNude, model, variant).render();
        let twice = Transform::MirrorHorizontal
            .apply(&Transform::MirrorHorizontal.apply(&bmp));
        prop_assert_eq!(RobustHash::of(&bmp), RobustHash::of(&twice));
        prop_assert_eq!(content_digest(&bmp), content_digest(&twice));
    }

    /// Benign per-pixel noise never moves the hash past the reverse-search
    /// threshold by more than a small margin; mirroring always moves it
    /// far.
    #[test]
    fn transform_distance_envelope(model in 1u32..200, variant in 0u64..200, seed in 0u64..1000) {
        let bmp = ImageSpec::model_photo(ImageClass::ModelNude, model, variant).render();
        let h = RobustHash::of(&bmp);
        let noisy = Transform::Noise { amplitude: 6, seed }.apply(&bmp);
        prop_assert!(h.distance(&RobustHash::of(&noisy)) <= imagesim::DEFAULT_MATCH_THRESHOLD + 6);
        let mirrored = Transform::MirrorHorizontal.apply(&bmp);
        prop_assert!(h.distance(&RobustHash::of(&mirrored)) > imagesim::DEFAULT_MATCH_THRESHOLD);
    }

    /// `[H]/[W]` headings always parse when both tags are present,
    /// whatever surrounds them.
    #[test]
    fn hw_parser_total_on_tagged_headings(
        pre in "[a-zA-Z0-9 $.]{0,16}",
        mid in "[a-zA-Z0-9 $.]{1,16}",
        post in "[a-zA-Z0-9 $.]{1,16}",
    ) {
        let heading = format!("{pre}[H]{mid}[W]{post}");
        prop_assert!(parse_hw_heading(&heading).is_some());
    }

    /// Algorithm 1 is monotone: raising OCR can only move an image
    /// towards SFV; raising NSFW past the cutoff forces NSFV.
    #[test]
    fn algorithm1_monotonicity(nsfw in 0.0f64..1.0, ocr in 0usize..60) {
        use ewhoring_core::nsfv::algorithm1_is_sfv;
        if algorithm1_is_sfv(nsfw, ocr) && nsfw >= 0.01 {
            prop_assert!(algorithm1_is_sfv(nsfw, ocr + 10));
        }
        if nsfw > 0.3 {
            prop_assert!(!algorithm1_is_sfv(nsfw, ocr));
        }
    }

    /// SparseVec dot products are linear in scaling of the dense side.
    #[test]
    fn sparse_dot_is_linear(pairs in prop::collection::vec((0usize..32, -10.0f64..10.0), 0..16)) {
        use linsvm::SparseVec;
        let v = SparseVec::from_pairs(pairs);
        let dense: Vec<f64> = (0..32).map(|i| i as f64 * 0.5 - 3.0).collect();
        let doubled: Vec<f64> = dense.iter().map(|x| 2.0 * x).collect();
        let d1 = v.dot(&dense);
        let d2 = v.dot(&doubled);
        prop_assert!((d2 - 2.0 * d1).abs() < 1e-9);
    }

    /// H-index is bounded by both the thread count and the max replies.
    #[test]
    fn h_index_bounds(counts in prop::collection::vec(0usize..500, 0..40)) {
        let h = socgraph::h_index(&counts);
        prop_assert!(h <= counts.len());
        prop_assert!(h <= counts.iter().copied().max().unwrap_or(0));
    }

    /// FX conversion is positive-homogeneous in the amount.
    #[test]
    fn fx_is_linear(amount in 0.01f64..10_000.0, month in 0u32..130) {
        use worldgen::fx::{CurrencyCode, FxTable};
        let fx = FxTable::new();
        let day = Day::from_ymd(2009, 1, 1).plus_days(month * 30);
        for cur in [CurrencyCode::Usd, CurrencyCode::Gbp, CurrencyCode::Eur, CurrencyCode::Btc] {
            let one = fx.to_usd(1.0, cur, day);
            let many = fx.to_usd(amount, cur, day);
            prop_assert!((many - amount * one).abs() < 1e-6 * many.abs().max(1.0));
        }
    }
}
