//! End-to-end integration: the full pipeline against a generated world,
//! checking cross-stage consistency invariants that no single crate can
//! see on its own.

use ewhoring_core::report::full_report;
use std::collections::HashSet;

fn report() -> (worldgen::World, ewhoring_core::PipelineReport) {
    let world = ewhoring_suite::demo_world(0xE2E2);
    let report = ewhoring_suite::demo_pipeline(&world);
    (world, report)
}

#[test]
fn funnel_is_monotone() {
    let (_, r) = report();
    // Every stage can only shrink the data.
    assert!(r.harvest.downloaded <= r.harvest.unique_urls);
    assert!(r.harvest.analysed <= r.harvest.downloaded);
    assert!(r.harvest.proofs.len() + r.harvest.not_proof == r.harvest.analysed);
    assert!(r.funnel.previews_nsfv <= r.funnel.preview_downloads);
    assert!(r.funnel.unique_files <= r.funnel.preview_downloads + r.funnel.pack_images);
    // Table 5 queries bounded by downloads (≤3 per pack, all NSFV previews).
    assert!(r.provenance.packs.total <= 3 * r.funnel.packs_downloaded);
    assert!(r.provenance.previews.total == r.funnel.previews_nsfv);
}

#[test]
fn detected_tops_are_extracted_threads() {
    let (world, r) = report();
    let extracted: HashSet<_> = ewhoring_core::extract::extract_ewhoring_threads(&world.corpus)
        .all_threads()
        .into_iter()
        .collect();
    for t in &r.topcls.detected {
        assert!(extracted.contains(t), "TOP outside the extraction set");
    }
}

#[test]
fn table1_totals_are_consistent_with_corpus() {
    let (world, r) = report();
    for row in &r.forums {
        // Actors in a forum's eWhoring threads are bounded by the forum's
        // registered actors.
        let forum = world
            .corpus
            .forums()
            .iter()
            .find(|f| f.name == row.forum)
            .expect("forum exists");
        let registered = world
            .corpus
            .actors()
            .iter()
            .filter(|a| a.forum == forum.id)
            .count();
        assert!(row.actors <= registered, "{}", row.forum);
        assert!(
            row.posts >= row.threads,
            "{}: every thread has a post",
            row.forum
        );
    }
    // TOPs column sums to the detected set.
    let tops: usize = r.forums.iter().map(|f| f.tops).sum();
    assert_eq!(tops, r.topcls.detected.len());
}

#[test]
fn flagged_material_never_reaches_later_stages() {
    let (world, r) = report();
    // All flagged threads are genuinely planted.
    for t in &r.safety.stage.flagged_threads {
        assert!(world.truth.csam_threads.contains(t));
    }
    // And unique-file accounting excludes deleted images: the planted
    // specs' digests must not appear among analysed proofs.
    let planted: HashSet<_> = world.truth.csam_specs.iter().collect();
    for proof in &r.harvest.proofs {
        // proofs are payment screenshots; planted specs are model photos
        let _ = proof;
    }
    assert!(!planted.is_empty());
}

#[test]
fn bhw_has_no_detected_tops() {
    // BlackHatWorld removes pack threads (Table 1: 0 TOPs); the classifier
    // should find none (or at most a stray false positive).
    let (_, r) = report();
    let bhw = r
        .forums
        .iter()
        .find(|f| f.forum == "BlackHatWorld")
        .expect("BHW row");
    assert!(bhw.tops <= 2, "BHW tops {}", bhw.tops);
    assert!(bhw.threads > 0, "BHW still discusses eWhoring");
}

#[test]
fn full_report_renders_and_serialises() {
    let (_, r) = report();
    let text = full_report(&r);
    assert!(text.len() > 4000);
    let json = serde_json::to_string(&r).expect("json");
    let back: ewhoring_core::PipelineReport = serde_json::from_str(&json).expect("roundtrip");
    assert_eq!(back.funnel.unique_files, r.funnel.unique_files);
    assert_eq!(back.forums.len(), r.forums.len());
}

#[test]
fn stage_timings_cover_all_stages() {
    let (_, r) = report();
    let names: Vec<&str> = r.timings.iter().map(|t| t.stage.as_str()).collect();
    for expected in [
        "extract",
        "top_classifier",
        "crawl",
        "measure_images",
        "safety",
        "nsfv",
        "provenance",
        "finance",
        "actors",
    ] {
        assert!(names.contains(&expected), "missing stage {expected}");
    }
    // Every stage reports throughput alongside wall-clock.
    for t in &r.timings {
        assert!(t.items > 0, "stage {} processed no items", t.stage);
    }
}
