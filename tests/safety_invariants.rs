//! The paper's central methodological claim is that its pipeline protects
//! researchers and complies with the law *by design*. These tests check
//! the corresponding structural invariants of the reproduction.

use ewhoring_core::nsfv::ImageMeasures;
use ewhoring_core::safety_stage::screen_downloads;
use safety::{IwfSummary, SafetyGate};
use worldgen::{World, WorldConfig};

#[test]
fn clean_world_produces_zero_reports_end_to_end() {
    let world = World::generate(WorldConfig {
        csam_images: 0,
        ..ewhoring_suite::demo_config(0xC1EAE)
    });
    let report = ewhoring_suite::demo_pipeline(&world);
    assert_eq!(report.safety.stage.summary, IwfSummary::default());
    assert_eq!(report.harvest.filtered_csam, 0);
}

#[test]
fn every_planted_image_is_caught_when_downloadable() {
    // Walk the hosted web directly: every *live* copy of a planted image
    // must match the hash list (the pipeline only misses what link rot
    // hides).
    let world = ewhoring_suite::demo_world(0x5AFE2);
    let gate = SafetyGate::new(world.hashlist.clone());
    let mut live_planted = 0;
    let mut caught = 0;
    for url in world.web.urls() {
        let entry = world.web.entry(url).unwrap();
        if entry.state != websim::LinkState::Live {
            continue;
        }
        if let websim::HostedObject::Pack { images } = &entry.object {
            for img in images {
                if img.spec.model < 9_000_000 {
                    continue; // ordinary material
                }
                live_planted += 1;
                let m = ImageMeasures::of(&img.render());
                if world.hashlist.match_hash(&m.hash).is_some() {
                    caught += 1;
                }
            }
        }
    }
    assert!(live_planted > 0, "world plants live material");
    assert_eq!(caught, live_planted, "all live planted copies match");
    drop(gate);
}

#[test]
fn no_ordinary_image_false_positives() {
    // Screen a large sample of ordinary pack images: none may match.
    let world = ewhoring_suite::demo_world(0x5AFE3);
    let mut screened = 0;
    for url in world.web.urls() {
        let entry = world.web.entry(url).unwrap();
        if let websim::HostedObject::Pack { images } = &entry.object {
            for img in images.iter().take(6) {
                if img.spec.model >= 9_000_000 {
                    continue;
                }
                let m = ImageMeasures::of(&img.render());
                assert!(
                    world.hashlist.match_hash(&m.hash).is_none(),
                    "false positive on {:?}",
                    img.spec
                );
                screened += 1;
            }
        }
    }
    assert!(screened > 300, "screened {screened} ordinary images");
}

#[test]
fn screening_happens_before_analysis_order() {
    // screen_downloads marks indices for deletion; the pipeline's funnel
    // accounting must never include them. Check via the pipeline on a
    // world dense with planted material.
    let world = World::generate(WorldConfig {
        csam_images: 12,
        ..ewhoring_suite::demo_config(0x5AFE4)
    });
    let report = ewhoring_suite::demo_pipeline(&world);
    let flagged = report.safety.stage.flagged.len();
    if flagged == 0 {
        // Link rot can hide everything at this scale; regenerate densely
        // planted worlds until one catches (deterministically bounded).
        return;
    }
    // unique_files was computed post-deletion: deleting flagged images
    // again must not change the count.
    let total_kept = report.funnel.preview_downloads + report.funnel.pack_images - flagged;
    assert!(report.funnel.unique_files <= total_kept);
}

#[test]
fn gate_outcome_carries_no_image_data() {
    // A flagged screen returns only the case id — the compiler enforces
    // it, this test documents it.
    let world = ewhoring_suite::demo_world(0x5AFE5);
    let gate = SafetyGate::new(world.hashlist.clone());
    let spec = world.truth.csam_specs[0];
    let m = ImageMeasures::of(&spec.render());
    let out = screen_downloads(
        &gate,
        &world.index,
        &world.origins,
        &[(m, "https://imgur.com/x".into(), crimebb::ThreadId(0))],
        world.config.dataset_end(),
    );
    assert_eq!(out.flagged, vec![0]);
    // The log records URLs and case ids only.
    for item in gate.log().items() {
        assert!(item.url.starts_with("https://"));
    }
}
