//! Failure injection: the pipeline must stay total on degenerate worlds —
//! minimum-size corpora, missing side boards, empty hash lists, and
//! everything-dead webs.

use ewhoring_core::pipeline::{Pipeline, PipelineOptions};
use worldgen::{World, WorldConfig};

fn run(config: WorldConfig) -> ewhoring_core::PipelineReport {
    let world = World::generate(config);
    Pipeline::new(PipelineOptions {
        k_key_actors: 5,
        ..PipelineOptions::default()
    })
    .run(&world)
}

#[test]
fn minimum_scale_world_runs() {
    // Every per-forum count clamps to its minimum.
    let report = run(WorldConfig {
        seed: 1,
        scale: 0.001,
        origin_domains: 40,
        csam_images: 1,
        with_side_boards: true,
    });
    assert_eq!(report.forums.len(), worldgen::FORUM_PROFILES.len());
    assert_eq!(report.cohorts.len(), 7);
    // Tiny worlds may legitimately produce zero proofs or zero packs; the
    // structures must still be present and consistent.
    assert_eq!(
        report.harvest.analysed,
        report.harvest.proofs.len() + report.harvest.not_proof
    );
}

#[test]
fn no_side_boards_world_runs() {
    let report = run(WorldConfig {
        with_side_boards: false,
        ..WorldConfig::test_scale(2)
    });
    // Without Currency Exchange / Bragging Rights the finance analyses
    // degrade gracefully to empty rather than panicking.
    assert_eq!(report.currency.threads, 0);
    assert!(!report.topcls.detected.is_empty());
    assert!(report.funnel.packs_downloaded > 0);
}

#[test]
fn empty_hashlist_world_runs() {
    let report = run(WorldConfig {
        csam_images: 0,
        ..WorldConfig::test_scale(3)
    });
    assert_eq!(report.safety.stage.summary.total_reports, 0);
    assert!(report.safety.stage.flagged.is_empty());
}

#[test]
fn pipeline_handles_empty_top_detection() {
    // A world whose eWhoring threads exist but where the classifier finds
    // nothing is simulated by running the crawl on an empty detection set;
    // the pipeline-level equivalent is a zero-TOP forum (BlackHatWorld),
    // which every other test covers. Here: crawl with no TOPs.
    let world = World::generate(WorldConfig::test_scale(4));
    let crawl = ewhoring_core::crawl::crawl_tops(&world.corpus, &world.catalog, &world.web, &[]);
    assert_eq!(crawl.total_tops, 0);
    assert!(crawl.previews.is_empty() && crawl.packs.is_empty());
    // Downstream stages accept the empty inputs.
    let prov = ewhoring_core::provenance::analyse_provenance(
        &world.index,
        &world.wayback,
        &world.origins,
        &[],
        &[],
        &[],
    );
    assert_eq!(prov.packs.total, 0);
    assert_eq!(prov.distinct_domains, 0);
    assert_eq!(prov.domain_tags.len(), 3);
}

#[test]
fn single_forum_metrics_hold() {
    // The smallest forums (min-clamped to a handful of threads) still get
    // Table 1 rows with consistent counts.
    let report = run(WorldConfig {
        seed: 5,
        scale: 0.002,
        origin_domains: 50,
        csam_images: 1,
        with_side_boards: true,
    });
    for row in &report.forums {
        assert!(row.posts >= row.threads, "{}", row.forum);
        assert!(row.tops <= row.threads, "{}", row.forum);
    }
}
