//! The flat-advance carry folds reproduce the batch artifacts exactly.
//!
//! `EpochEngine::advance` assembles the earnings analysis, the cohort
//! table, and the Currency Exchange marginals from carried counters
//! (`EarningsAgg`, `ActorFold`, the CE-thread ledgers) folded over only
//! each epoch's delta slice. These tests pin the other end of that
//! contract: the folded artifacts must serialize byte-for-byte equal to
//! a direct batch recomputation over the final streamed world, across
//! worker counts and epoch counts — including epochs=1, where the
//! "fold" is a single slice covering the whole timeline.

use ewhoring_core::actors::{actor_metrics, cohort_table};
use ewhoring_core::extract::extract_ewhoring_threads;
use ewhoring_core::finance::{analyse_currency_exchange, analyse_earnings};
use ewhoring_core::pipeline::{stream_world, EpochEngine, PipelineOptions, StreamSpec};
use worldgen::{World, WorldConfig};

const SEED: u64 = 0xF01D;

/// Serializes an artifact for byte-level comparison. A macro rather
/// than a generic helper: the suite crate depends on `serde_json` but
/// not on `serde` itself, so the `Serialize` bound isn't nameable here.
macro_rules! json {
    ($artifact:expr) => {
        serde_json::to_string($artifact).expect("artifact serializes")
    };
}

#[test]
fn folded_artifacts_match_batch_recomputation_across_matrix() {
    for epochs in [1u32, 3, 6] {
        // Batch reference: re-derive the final streamed world directly
        // (the feed re-assigns chronological ids, so the raw generated
        // world would be id-shifted) and recompute each artifact the
        // non-stream way. Worker-independent, so computed once per
        // epoch count.
        let final_world = stream_world(
            World::generate(WorldConfig::test_scale(SEED)),
            StreamSpec {
                epochs,
                upto: epochs,
            },
        );
        let threads = extract_ewhoring_threads(&final_world.corpus).all_threads();
        let batch_cohorts = json!(&cohort_table(
            &actor_metrics(&final_world.corpus, &threads,)
        ));
        let batch_currency = json!(&analyse_currency_exchange(
            &final_world.corpus,
            final_world.hackforums,
            &threads,
        ));

        for workers in [1usize, 2, 7] {
            let options = PipelineOptions {
                workers,
                ..PipelineOptions::default()
            };
            let world = World::generate(WorldConfig::test_scale(SEED));
            let mut engine = EpochEngine::new(world, epochs, options);
            let report = engine
                .advance_to(epochs)
                .expect("advance")
                .expect("final epoch yields a report");
            let ctx = format!("workers={workers} epochs={epochs}");

            // Folded EarningsAgg vs one-shot analysis over the same
            // harvested proof list.
            assert!(report.earnings.actors > 0, "{ctx}: no earners");
            assert_eq!(
                json!(&report.earnings),
                json!(&analyse_earnings(&report.harvest)),
                "{ctx}: folded earnings diverged from analyse_earnings"
            );

            // Carried ActorFold counters vs batch actor_metrics.
            assert!(!report.cohorts.is_empty(), "{ctx}: empty cohort table");
            assert_eq!(
                json!(&report.cohorts),
                batch_cohorts,
                "{ctx}: folded cohorts diverged from batch actor_metrics"
            );

            // CE-thread ledger + per-actor tallies vs the batch Table 7
            // scan.
            assert_eq!(
                json!(&report.currency),
                batch_currency,
                "{ctx}: folded CE marginals diverged from batch scan"
            );
        }
    }
}
