//! Kill-and-resume matrix for the checkpoint journal.
//!
//! For every stage boundary: run a prefix of the pipeline with a
//! journal, throw the process state away (only the journal files
//! survive, exactly like a crash at that boundary), resume from the
//! journal, and assert the final report is byte-identical to an
//! uninterrupted run — with fault injection *and* corruption injection
//! active, at both a serial and an awkward worker count.

use ewhoring_core::pipeline::{Pipeline, PipelineOptions, TimingSource};
use std::fs;
use std::path::{Path, PathBuf};
use worldgen::{World, WorldConfig};

/// The canonical snapshot: serialized report minus wall-clock timings.
fn snapshot(report: &ewhoring_core::PipelineReport) -> String {
    let json = serde_json::to_string(report).expect("json");
    let mut v: serde_json::Value = serde_json::from_str(&json).expect("parse");
    v.as_object_mut().expect("object").remove("timings");
    v.to_string()
}

/// A fresh per-test temp dir (removed first, so reruns start clean).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ewhoring-resume-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The single `run-<key>` subdir a journaled run creates under `base`.
fn run_subdir(base: &Path) -> PathBuf {
    fs::read_dir(base)
        .expect("read journal dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.is_dir())
        .expect("journal run dir exists")
}

/// Copies the first `k` stage records (filenames are `NN-stage.json`)
/// from a complete journal into a fresh journal dir — the on-disk state
/// a run killed after `k` stages leaves behind.
fn copy_prefix(full: &Path, dst_base: &Path, k: usize) {
    let src = run_subdir(full);
    let dst = dst_base.join(src.file_name().expect("run dir name"));
    fs::create_dir_all(&dst).expect("create run dir copy");
    for entry in fs::read_dir(&src)
        .expect("read run dir")
        .filter_map(Result::ok)
    {
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let index: usize = match name.get(..2).and_then(|p| p.parse().ok()) {
            Some(i) => i,
            None => continue,
        };
        if index < k {
            fs::copy(entry.path(), dst.join(&name)).expect("copy stage record");
        }
    }
}

fn options(workers: usize) -> PipelineOptions {
    PipelineOptions {
        k_key_actors: 8,
        workers,
        fault_severity: 1.0,
        corruption_severity: 0.75,
        ..PipelineOptions::default()
    }
}

/// Journal-loaded stage rows in a report's timings (the bookkeeping
/// `journal` row excluded).
fn loaded_stages(report: &ewhoring_core::PipelineReport) -> usize {
    report
        .timings
        .iter()
        .filter(|t| t.stage != "journal" && t.source == TimingSource::Journal)
        .count()
}

fn kill_matrix(workers: usize, tag: &str) {
    let world = World::generate(WorldConfig::test_scale(0x4E5));
    let pipe = Pipeline::new(options(workers));
    let n_stages = Pipeline::stages().len();

    // Uninterrupted, journal-free run: the reference every resumed run
    // must reproduce byte-for-byte.
    let reference = snapshot(&pipe.run(&world));

    // A full journaled run both checks the journaling path itself and
    // produces the complete journal the kill matrix slices prefixes of.
    let full_dir = temp_dir(&format!("{tag}-full"));
    let full = pipe
        .run_resumable(&world, &full_dir)
        .expect("journaled run");
    assert_eq!(
        snapshot(&full).as_bytes(),
        reference.as_bytes(),
        "journaling a run must not change its report"
    );
    assert_eq!(loaded_stages(&full), 0, "first run computes every stage");

    for k in 0..=n_stages {
        let dir = temp_dir(&format!("{tag}-k{k}"));
        copy_prefix(&full_dir, &dir, k);
        let resumed = pipe
            .run_resumable(&world, &dir)
            .expect("resume from prefix");
        assert_eq!(
            snapshot(&resumed).as_bytes(),
            reference.as_bytes(),
            "resume after {k} journaled stage(s) diverged (workers={workers})"
        );
        assert_eq!(
            loaded_stages(&resumed),
            k,
            "exactly the journaled prefix must load, the rest recompute"
        );
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&full_dir);
}

#[test]
fn kill_and_resume_at_every_boundary_serial() {
    kill_matrix(1, "w1");
}

#[test]
fn kill_and_resume_at_every_boundary_awkward_workers() {
    kill_matrix(7, "w7");
}

/// A tampered journal record must be rejected — and rejection means
/// recomputation, so the final report is still byte-identical.
#[test]
fn tampered_journal_recomputes_instead_of_trusting() {
    let world = World::generate(WorldConfig::test_scale(0x4E5));
    let pipe = Pipeline::new(options(1));

    let dir = temp_dir("tamper");
    let clean = pipe.run_resumable(&world, &dir).expect("journaled run");
    let reference = snapshot(&clean);

    // Flip bytes inside the third stage's payload.
    let run_dir = run_subdir(&dir);
    let victim = fs::read_dir(&run_dir)
        .expect("read run dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy().starts_with("02-"))
                .unwrap_or(false)
        })
        .expect("third stage record exists");
    let tampered = fs::read_to_string(&victim)
        .expect("read record")
        .replace(['3', '7'], "1");
    fs::write(&victim, tampered).expect("write tampered record");

    let resumed = pipe.run_resumable(&world, &dir).expect("resume");
    assert_eq!(
        snapshot(&resumed).as_bytes(),
        reference.as_bytes(),
        "a rejected record must fall back to recomputation, not corrupt the report"
    );
    // Only the intact prefix (stages 0 and 1) may be trusted.
    assert_eq!(loaded_stages(&resumed), 2);
    let _ = fs::remove_dir_all(&dir);
}

/// Timing provenance: a fully-journaled resume marks every stage row
/// `journal` (plus the overhead row); a plain run is all `computed`
/// with no journal row at all.
#[test]
fn timing_sources_separate_journal_loads_from_compute() {
    let world = World::generate(WorldConfig::test_scale(0x4E5));
    let pipe = Pipeline::new(options(1));
    let n_stages = Pipeline::stages().len();

    let plain = pipe.run(&world);
    assert!(plain
        .timings
        .iter()
        .all(|t| t.source == TimingSource::Computed));
    assert!(plain.timings.iter().all(|t| t.stage != "journal"));

    let dir = temp_dir("sources");
    let first = pipe.run_resumable(&world, &dir).expect("journaled run");
    assert_eq!(loaded_stages(&first), 0);
    let resumed = pipe.run_resumable(&world, &dir).expect("warm resume");
    assert_eq!(loaded_stages(&resumed), n_stages);
    assert!(
        resumed.timings.iter().any(|t| t.stage == "journal"),
        "journal overhead gets its own timing row"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Kill-and-resume at an epoch boundary: advance a journaled epoch
/// engine partway, drop it (only the checkpoint files survive, exactly
/// like a crash between epochs), rebuild from the same journal dir, and
/// finish. The resumed engine must pick up at the journaled epoch —
/// not epoch 0 — and the final report must be byte-identical to an
/// uninterrupted engine's, which in turn equals the full recompute.
#[test]
fn epoch_engine_resumes_from_journaled_boundary() {
    use ewhoring_core::pipeline::EpochEngine;

    let dir = temp_dir("epoch");
    let options = PipelineOptions {
        k_key_actors: 12,
        ..PipelineOptions::default()
    };
    let epochs = 3;
    let world = || World::generate(WorldConfig::test_scale(0x3E50));

    // Uninterrupted reference.
    let mut straight = EpochEngine::new(world(), epochs, options);
    let reference = snapshot(
        &straight
            .advance_to(epochs)
            .expect("straight run")
            .expect("at least one epoch"),
    );

    // Crash after epoch 2: the engine is dropped mid-stream.
    {
        let mut engine =
            EpochEngine::with_journal(world(), epochs, options, &dir).expect("open journal");
        assert_eq!(engine.epoch(), 0, "fresh journal starts at epoch 0");
        engine.advance_to(2).expect("advance to epoch 2");
    }

    // Resume: the journal alone restores epoch 2's world and carry.
    let mut resumed =
        EpochEngine::with_journal(world(), epochs, options, &dir).expect("reopen journal");
    assert_eq!(resumed.epoch(), 2, "resumes at the journaled epoch");
    let report = resumed
        .advance_to(epochs)
        .expect("finish resumed run")
        .expect("one epoch left");
    assert_eq!(
        snapshot(&report).as_bytes(),
        reference.as_bytes(),
        "resumed final report diverged from the uninterrupted run"
    );

    let _ = fs::remove_dir_all(&dir);
}

/// The same boundary-kill drill with fault and corruption injection
/// active: every epoch checkpoint must persist the epoch's quarantine
/// ledger and stage-health section (not journal empty placeholders), so
/// a resumed engine tells the same data-quality story as an unkilled
/// one — and the final report is still byte-identical.
#[test]
fn epoch_engine_resume_preserves_quarantine_across_kill() {
    use ewhoring_core::pipeline::EpochEngine;

    let dir = temp_dir("epoch-corrupt");
    let opts = options(2); // fault_severity 1.0, corruption_severity 0.75
    let epochs = 3;
    let world = || World::generate(WorldConfig::test_scale(0x3E50));

    // Uninterrupted reference — and proof the corruption plan actually
    // quarantined records, or the persistence claim goes untested.
    let mut straight = EpochEngine::new(world(), epochs, opts);
    let reference_report = straight
        .advance_to(epochs)
        .expect("straight run")
        .expect("at least one epoch");
    assert!(
        !reference_report.quarantine.entries().is_empty(),
        "corruption severity 0.75 must quarantine records at this scale"
    );
    let reference = snapshot(&reference_report);

    // Crash after epoch 2, mid-corruption: only the checkpoints survive.
    {
        let mut engine =
            EpochEngine::with_journal(world(), epochs, opts, &dir).expect("open journal");
        engine.advance_to(2).expect("advance to epoch 2");
    }

    // The epoch-2 checkpoint record itself carries the ledger and the
    // health rows, not `quarantined: []` placeholders.
    let run_dir = run_subdir(&dir);
    let record_path = fs::read_dir(&run_dir)
        .expect("read run dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| {
            p.file_name().is_some_and(|n| {
                let n = n.to_string_lossy();
                n.contains("epoch-2") && n.ends_with(".json")
            })
        })
        .expect("epoch-2 checkpoint record exists");
    // The on-disk file is a checksummed envelope; the stage record is
    // its embedded `payload` string.
    let envelope: serde_json::Value =
        serde_json::from_str(&fs::read_to_string(&record_path).expect("read record"))
            .expect("checkpoint envelope parses");
    let payload = envelope
        .as_object()
        .and_then(|o| o.get("payload"))
        .and_then(|p| p.as_str())
        .expect("envelope embeds the record payload");
    let record: serde_json::Value =
        serde_json::from_str(payload).expect("checkpoint record parses");
    let record = record.as_object().expect("checkpoint record is an object");
    assert!(
        record
            .get("quarantined")
            .and_then(|q| q.as_array())
            .is_some_and(|a| !a.is_empty()),
        "epoch checkpoint must persist the epoch's quarantine ledger"
    );
    assert!(
        record.get("health").and_then(|h| h.as_array()).is_some(),
        "epoch checkpoint must carry the epoch's stage-health section"
    );

    // Resume and finish: byte-identical report, quarantine included
    // (the snapshot serializes the ledger and health sections).
    let mut resumed =
        EpochEngine::with_journal(world(), epochs, opts, &dir).expect("reopen journal");
    assert_eq!(resumed.epoch(), 2, "resumes at the journaled epoch");
    let report = resumed
        .advance_to(epochs)
        .expect("finish resumed run")
        .expect("one epoch left");
    assert_eq!(
        snapshot(&report).as_bytes(),
        reference.as_bytes(),
        "resumed report (quarantine and health included) diverged from the unkilled run"
    );

    let _ = fs::remove_dir_all(&dir);
}
