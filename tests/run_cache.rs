//! Journal-as-cache semantics of `core::pipeline::cache::RunCache`:
//! sequential reuse through the on-disk stage journal, single-flight
//! deduplication of concurrent identical requests, and run-key
//! isolation between different specs.

use ewhoring_core::pipeline::{snapshot_json, Pipeline, RunCache, RunSpec, TimingSource};
use std::path::PathBuf;
use std::sync::Arc;
use worldgen::World;

fn tiny(seed: u64) -> RunSpec {
    RunSpec {
        scale: 0.01,
        seed,
        workers: 1,
        faults: 0.0,
        corruption: 0.0,
        epochs: 0,
        upto: 0,
        shards: 0,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ewhoring-runcache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The spec's report computed directly, without any cache or journal —
/// the ground truth a cached run must match byte-for-byte.
fn direct_snapshot(spec: &RunSpec) -> String {
    let world = World::generate(spec.world_config());
    let report = Pipeline::new(spec.options()).run(&world);
    snapshot_json(&report).expect("snapshot renders")
}

#[test]
fn second_identical_run_is_served_entirely_from_the_journal() {
    let dir = tmp_dir("sequential");
    let spec = tiny(0x5E0);

    // First run: a fresh cache over an empty journal computes every
    // stage.
    let first = RunCache::with_journal(&dir)
        .get_or_compute(&spec)
        .expect("first run");
    assert!(first.fresh);
    assert!(first
        .report
        .timings
        .iter()
        .filter(|t| t.stage != "journal")
        .all(|t| t.source == TimingSource::Computed));

    // Second run through a *new* cache (a restarted server, a later
    // batch invocation): every stage loads from the journal — 100%
    // `TimingSource::Journal` — and the snapshot is byte-identical.
    let second = RunCache::with_journal(&dir)
        .get_or_compute(&spec)
        .expect("second run");
    assert!(
        second
            .report
            .timings
            .iter()
            .all(|t| t.source == TimingSource::Journal),
        "expected every stage journal-loaded, got {:?}",
        second.report.timings
    );
    assert_eq!(
        snapshot_json(&first.report).expect("snapshot"),
        snapshot_json(&second.report).expect("snapshot"),
        "journal-served report must match the computed one"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_identical_requests_compute_exactly_once() {
    let cache = Arc::new(RunCache::in_memory());
    let spec = tiny(0xC0C0);

    let runs: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                scope.spawn(move || cache.get_or_compute(&spec).expect("run succeeds"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Single-flight: four racers, one pipeline execution.
    assert_eq!(cache.computed_runs(), 1);
    assert_eq!(runs.iter().filter(|r| r.fresh).count(), 1);
    // Everyone got the same shared report.
    for run in &runs[1..] {
        assert!(Arc::ptr_eq(&runs[0].report, &run.report));
    }
}

#[test]
fn different_seeds_get_distinct_keys_and_never_cross_contaminate() {
    let dir = tmp_dir("isolation");
    let a = tiny(0xAAAA);
    let b = tiny(0xBBBB);
    assert_ne!(a.run_key().unwrap(), b.run_key().unwrap());

    let cache = RunCache::with_journal(&dir);
    let run_a = cache.get_or_compute(&a).expect("run a");
    let run_b = cache.get_or_compute(&b).expect("run b");
    assert_eq!(cache.computed_runs(), 2, "distinct keys both compute");

    // Each cached report matches its own direct computation — serving
    // seed B never bled into seed A's artifacts (and vice versa).
    assert_eq!(
        snapshot_json(&run_a.report).expect("snapshot"),
        direct_snapshot(&a)
    );
    assert_eq!(
        snapshot_json(&run_b.report).expect("snapshot"),
        direct_snapshot(&b)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
