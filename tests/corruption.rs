//! Input-corruption sweep: severity `0.0` is byte-identical to a clean
//! pipeline; a calibrated severity completes end-to-end with a
//! deterministic, non-empty quarantine ledger — and never a panic.

use ewhoring_core::pipeline::{Pipeline, PipelineOptions};
use worldgen::{World, WorldConfig};

/// The canonical snapshot: serialized report minus wall-clock timings.
fn snapshot(report: &ewhoring_core::PipelineReport) -> String {
    let json = serde_json::to_string(report).expect("json");
    let mut v: serde_json::Value = serde_json::from_str(&json).expect("parse");
    v.as_object_mut().expect("object").remove("timings");
    v.to_string()
}

fn options(corruption_severity: f64, workers: usize) -> PipelineOptions {
    PipelineOptions {
        k_key_actors: 8,
        workers,
        corruption_severity,
        ..PipelineOptions::default()
    }
}

#[test]
fn severity_zero_quarantines_nothing() {
    let world = World::generate(WorldConfig::test_scale(0xC0DE));
    let report = Pipeline::new(options(0.0, 2)).run(&world);
    assert!(report.quarantine.is_empty(), "clean inputs, empty ledger");
    assert!(report.health.is_empty(), "no driver interventions");
    let text = ewhoring_core::report::full_report(&report);
    assert!(text.contains("clean run: no records quarantined"));
}

#[test]
fn calibrated_severity_completes_with_deterministic_ledger() {
    let world = World::generate(WorldConfig::test_scale(0xC0DE));

    let clean = snapshot(&Pipeline::new(options(0.0, 2)).run(&world));
    let run = |workers: usize| Pipeline::new(options(1.0, workers)).run(&world);

    let a = run(2);
    assert!(
        !a.quarantine.is_empty(),
        "calibrated severity must quarantine records at test scale"
    );
    // Quarantine reaches the text report's pipeline-health section.
    let text = ewhoring_core::report::full_report(&a);
    assert!(text.contains("pipeline health"));
    assert!(text.contains("quarantined records"));

    // Deterministic: same seed, same ledger, same report — across
    // reruns and across worker counts.
    let b = run(2);
    assert_eq!(a.quarantine, b.quarantine);
    assert_eq!(snapshot(&a).as_bytes(), snapshot(&b).as_bytes());
    for workers in [1, 7] {
        assert_eq!(
            snapshot(&run(workers)).as_bytes(),
            snapshot(&a).as_bytes(),
            "corruption must be worker-independent (workers={workers})"
        );
    }

    // And it genuinely changed the measurement (records were dropped).
    assert_ne!(snapshot(&a), clean);
}
