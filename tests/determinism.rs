//! Reproducibility: the entire measurement — world generation plus all
//! eight pipeline stages — must be a pure function of the seed.

/// Serializes a report with the only nondeterministic field (wall-clock
/// stage timings) stripped — the canonical snapshot form.
fn report_snapshot(report: &ewhoring_core::PipelineReport) -> String {
    let json = serde_json::to_string(report).expect("json");
    let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
    v.as_object_mut().unwrap().remove("timings");
    v.to_string()
}

#[test]
fn same_seed_same_report_json() {
    let run = || {
        let world = ewhoring_suite::demo_world(0xD37);
        let report = ewhoring_suite::demo_pipeline(&world);
        report_snapshot(&report)
    };
    assert_eq!(run(), run());
}

/// Byte-level snapshot determinism: two runs over the same seed must
/// produce *byte-identical* serialized reports (not just equal field
/// values), so a snapshot taken before a refactor can be compared
/// byte-for-byte against one taken after.
#[test]
fn serialized_report_snapshot_is_byte_identical() {
    let world = ewhoring_suite::demo_world(0xD37);
    let a = report_snapshot(&ewhoring_suite::demo_pipeline(&world));
    let b = report_snapshot(&ewhoring_suite::demo_pipeline(&world));
    assert_eq!(a.as_bytes(), b.as_bytes());
    // The snapshot covers every per-section artefact the paper reports.
    for key in [
        "\"forums\"",
        "\"funnel\"",
        "\"safety\"",
        "\"provenance\"",
        "\"earnings\"",
        "\"key_actors\"",
    ] {
        assert!(a.contains(key), "snapshot misses section {key}");
    }
}

#[test]
fn different_seeds_differ() {
    let w1 = ewhoring_suite::demo_world(1);
    let w2 = ewhoring_suite::demo_world(2);
    assert_ne!(w1.corpus.posts().len(), w2.corpus.posts().len());
    assert_ne!(w1.index.len(), w2.index.len());
}

#[test]
fn world_regeneration_is_stable_across_calls() {
    let a = ewhoring_suite::demo_world(99);
    let b = ewhoring_suite::demo_world(99);
    assert_eq!(a.corpus.posts().len(), b.corpus.posts().len());
    assert_eq!(a.web.len(), b.web.len());
    assert_eq!(a.truth.proof_info.len(), b.truth.proof_info.len());
    // Spot-check deep content equality.
    assert_eq!(
        a.corpus.threads()[17].heading,
        b.corpus.threads()[17].heading
    );
    let url_a: std::collections::BTreeSet<String> = a.web.urls().map(|u| u.to_https()).collect();
    let url_b: std::collections::BTreeSet<String> = b.web.urls().map(|u| u.to_https()).collect();
    assert_eq!(url_a, url_b);
}
