//! Reproducibility: the entire measurement — world generation plus all
//! eight pipeline stages — must be a pure function of the seed.

/// Serializes a report with the scheduling-dependent fields (wall-clock
/// stage timings, shard supervision counters) stripped — the canonical
/// snapshot form.
fn report_snapshot(report: &ewhoring_core::PipelineReport) -> String {
    let json = serde_json::to_string(report).expect("json");
    let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
    v.as_object_mut().unwrap().remove("timings");
    v.as_object_mut().unwrap().remove("supervision");
    v.to_string()
}

#[test]
fn same_seed_same_report_json() {
    let run = || {
        let world = ewhoring_suite::demo_world(0xD37);
        let report = ewhoring_suite::demo_pipeline(&world);
        report_snapshot(&report)
    };
    assert_eq!(run(), run());
}

/// Byte-level snapshot determinism: two runs over the same seed must
/// produce *byte-identical* serialized reports (not just equal field
/// values), so a snapshot taken before a refactor can be compared
/// byte-for-byte against one taken after.
#[test]
fn serialized_report_snapshot_is_byte_identical() {
    let world = ewhoring_suite::demo_world(0xD37);
    let a = report_snapshot(&ewhoring_suite::demo_pipeline(&world));
    let b = report_snapshot(&ewhoring_suite::demo_pipeline(&world));
    assert_eq!(a.as_bytes(), b.as_bytes());
    // The snapshot covers every per-section artefact the paper reports.
    for key in [
        "\"forums\"",
        "\"funnel\"",
        "\"safety\"",
        "\"provenance\"",
        "\"earnings\"",
        "\"key_actors\"",
    ] {
        assert!(a.contains(key), "snapshot misses section {key}");
    }
}

/// The worker-matrix contract behind `core::par`: the pipeline report is
/// a pure function of the seed, *not* of the worker count. Every
/// data-parallel stage reassembles its results in input order (and the
/// centrality gather is bit-identical to the serial sweep), so the
/// stripped-timings snapshot must match byte-for-byte across worker
/// counts — including one that divides nothing evenly.
#[test]
fn report_is_byte_identical_across_worker_counts() {
    use ewhoring_core::pipeline::{Pipeline, PipelineOptions};

    let world = ewhoring_suite::demo_world(0xD37);
    let run = |workers: usize| {
        let report = Pipeline::new(PipelineOptions {
            k_key_actors: 12,
            workers,
            ..PipelineOptions::default()
        })
        .run(&world);
        report_snapshot(&report)
    };
    let reference = run(1);
    for workers in [2, 7] {
        assert_eq!(
            run(workers).as_bytes(),
            reference.as_bytes(),
            "workers={workers} diverged from the serial report"
        );
    }
}

/// The merge-coordinator contract behind `core::pipeline::shard`: a
/// supervised sharded run must produce a report byte-identical to the
/// unsharded driver at *every* shard count — including `1` (pure
/// supervision overhead), counts that divide the forum list unevenly,
/// and counts exceeding it — and at every worker count inside each
/// shard. Extraction is per-forum independent, the actor fold is
/// order-insensitive under forum-major concatenation, and the edge
/// replay preserves the batch insertion order, so nothing may move.
#[test]
fn sharded_run_is_byte_identical_to_the_unsharded_driver() {
    use ewhoring_core::pipeline::{Pipeline, PipelineOptions};

    let world = ewhoring_suite::demo_world(0xD37);
    let run = |shards: usize, workers: usize| {
        let report = Pipeline::new(PipelineOptions {
            k_key_actors: 12,
            workers,
            shards,
            ..PipelineOptions::default()
        })
        .run(&world);
        report_snapshot(&report)
    };
    let reference = run(0, 1);
    for shards in [1, 2, 5] {
        for workers in [1, 2, 7] {
            assert_eq!(
                run(shards, workers).as_bytes(),
                reference.as_bytes(),
                "shards={shards} workers={workers} diverged from the unsharded report"
            );
        }
    }
}

#[test]
fn different_seeds_differ() {
    let w1 = ewhoring_suite::demo_world(1);
    let w2 = ewhoring_suite::demo_world(2);
    assert_ne!(w1.corpus.posts().len(), w2.corpus.posts().len());
    assert_ne!(w1.index.len(), w2.index.len());
}

#[test]
fn world_regeneration_is_stable_across_calls() {
    let a = ewhoring_suite::demo_world(99);
    let b = ewhoring_suite::demo_world(99);
    assert_eq!(a.corpus.posts().len(), b.corpus.posts().len());
    assert_eq!(a.web.len(), b.web.len());
    assert_eq!(a.truth.proof_info.len(), b.truth.proof_info.len());
    // Spot-check deep content equality.
    assert_eq!(
        a.corpus.threads()[17].heading,
        b.corpus.threads()[17].heading
    );
    let url_a: std::collections::BTreeSet<String> = a.web.urls().map(|u| u.to_https()).collect();
    let url_b: std::collections::BTreeSet<String> = b.web.urls().map(|u| u.to_https()).collect();
    assert_eq!(url_a, url_b);
}

/// The epoch-equivalence gate behind `core::pipeline::epoch`: after each
/// warm advance (delta-only topcls decisions, memoised measures, graph
/// append + warm-started centrality, finance fold), the report must be
/// byte-identical to a full recompute at that epoch — the same stream
/// code path run with a fresh carry over the same world — at every
/// epoch boundary and across worker counts.
#[test]
fn epoch_advance_is_byte_identical_to_full_recompute() {
    use ewhoring_core::pipeline::{EpochEngine, Pipeline, PipelineOptions};
    use worldgen::{World, WorldConfig};

    for workers in [1, 7] {
        let options = PipelineOptions {
            k_key_actors: 12,
            workers,
            ..PipelineOptions::default()
        };
        let world = World::generate(WorldConfig::test_scale(0xE70C));
        let mut engine = EpochEngine::new(world, 3, options);
        while engine.epoch() < engine.epochs() {
            let warm = engine.advance().expect("advance");
            let fresh = engine.fresh_report().expect("fresh recompute");
            assert_eq!(
                report_snapshot(&warm).as_bytes(),
                report_snapshot(&fresh).as_bytes(),
                "epoch {} diverged at workers={workers}",
                engine.epoch()
            );
            if engine.epoch() == engine.epochs() {
                // The final epoch's fresh-carry recompute is itself what
                // `Pipeline::run` produces for the same stream options.
                let batch = Pipeline::new(ewhoring_core::pipeline::PipelineOptions {
                    stream: Some(ewhoring_core::pipeline::StreamSpec {
                        epochs: engine.epochs(),
                        upto: engine.epoch(),
                    }),
                    ..options
                })
                .run(engine.world());
                assert_eq!(
                    report_snapshot(&warm).as_bytes(),
                    report_snapshot(&batch).as_bytes(),
                    "plain run() with stream options diverged at workers={workers}"
                );
            }
        }
    }
}
