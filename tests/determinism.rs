//! Reproducibility: the entire measurement — world generation plus all
//! eight pipeline stages — must be a pure function of the seed.

#[test]
fn same_seed_same_report_json() {
    let run = || {
        let world = ewhoring_suite::demo_world(0xD37);
        let report = ewhoring_suite::demo_pipeline(&world);
        serde_json::to_string(&report).expect("json")
    };
    let a = run();
    let b = run();
    // Strip the only nondeterministic field (wall-clock stage timings).
    let strip = |s: &str| -> String {
        let v: serde_json::Value = serde_json::from_str(s).unwrap();
        let mut v = v;
        v.as_object_mut().unwrap().remove("stage_ms");
        v.to_string()
    };
    assert_eq!(strip(&a), strip(&b));
}

#[test]
fn different_seeds_differ() {
    let w1 = ewhoring_suite::demo_world(1);
    let w2 = ewhoring_suite::demo_world(2);
    assert_ne!(w1.corpus.posts().len(), w2.corpus.posts().len());
    assert_ne!(w1.index.len(), w2.index.len());
}

#[test]
fn world_regeneration_is_stable_across_calls() {
    let a = ewhoring_suite::demo_world(99);
    let b = ewhoring_suite::demo_world(99);
    assert_eq!(a.corpus.posts().len(), b.corpus.posts().len());
    assert_eq!(a.web.len(), b.web.len());
    assert_eq!(a.truth.proof_info.len(), b.truth.proof_info.len());
    // Spot-check deep content equality.
    assert_eq!(
        a.corpus.threads()[17].heading,
        b.corpus.threads()[17].heading
    );
    let url_a: std::collections::BTreeSet<String> =
        a.web.urls().map(|u| u.to_https()).collect();
    let url_b: std::collections::BTreeSet<String> =
        b.web.urls().map(|u| u.to_https()).collect();
    assert_eq!(url_a, url_b);
}
